open Mac_rtl
module Cfg = Mac_cfg.Cfg
module Congruence = Mac_dataflow.Congruence
module Liveness = Mac_dataflow.Liveness
module Disambig = Mac_core.Disambig
module Coalesce = Mac_core.Coalesce
module Ps = Mac_opt.Pipeline_sched
module Sx = Symexec

type pass_class = Exact | Region | Fallback

(* The classic round, legalization and the per-block list scheduler keep
   the loop structure: they are matched exactly. The two loop
   restructurers are matched with region cut-points. Strength reduction
   rewrites induction variables wholesale and regalloc renames every
   register; both fall back to Rtlcheck + their own audits. *)
let classify = function
  | "simplify" | "copyprop" | "cse" | "combine" | "cleanflow" | "dce"
  | "legalize" | "legalize-first" | "schedule" ->
    Exact
  | "coalesce" | "pipeline-sched" -> Region
  | _ -> Fallback

type result = {
  blocks_checked : int;
  regions_skipped : int;
  fallback : string option;
  warnings : Diagnostic.t list;
}

let snapshot (f : Func.t) = { f with Func.name = f.Func.name }

(* ------------------------------------------------------------------ *)
(* Available equalities at block entry of the old function. A fact
   [(d, rhs)] at a block's entry means the register [d] currently holds
   the value of [rhs] over the {e current} values of its operand
   registers — exactly the justification CSE and copy propagation use
   when they reuse a value across a block boundary. Facts die when the
   defined register or an operand is redefined; load facts die at every
   store; calls kill everything. *)

type akey =
  | AMove of Rtl.operand
  | ABin of Rtl.binop * Rtl.operand * Rtl.operand
  | AUn of Rtl.unop * Rtl.operand
  | ALoad of Rtl.mem * Rtl.signedness
  | AExt of Reg.t * Rtl.operand * Width.t * Rtl.signedness

module FactSet = Set.Make (struct
  type t = int * akey

  let compare = Stdlib.compare
end)

let akey_regs = function
  | AMove (Rtl.Reg r) -> [ r ]
  | AMove (Rtl.Imm _) -> []
  | ABin (_, a, b) ->
    List.filter_map (function Rtl.Reg r -> Some r | _ -> None) [ a; b ]
  | AUn (_, Rtl.Reg r) -> [ r ]
  | AUn (_, Rtl.Imm _) -> []
  | ALoad (m, _) -> [ m.Rtl.base ]
  | AExt (src, pos, _, _) -> (
    src :: (match pos with Rtl.Reg r -> [ r ] | Rtl.Imm _ -> []))

let is_load_key = function ALoad _ -> true | _ -> false

let gen_fact (i : Rtl.inst) =
  let ok d key = not (List.exists (Reg.equal d) (akey_regs key)) in
  match i.kind with
  | Rtl.Move (d, o) ->
    let k = AMove o in
    if ok d k then Some (d, k) else None
  | Rtl.Binop (op, d, a, b) ->
    let k = ABin (op, a, b) in
    if ok d k then Some (d, k) else None
  | Rtl.Unop (op, d, a) ->
    let k = AUn (op, a) in
    if ok d k then Some (d, k) else None
  | Rtl.Load { dst; src; sign } ->
    let k = ALoad (src, sign) in
    if ok dst k then Some (dst, k) else None
  | Rtl.Extract { dst; src; pos; width; sign } ->
    let k = AExt (src, pos, width, sign) in
    if ok dst k then Some (dst, k) else None
  | _ -> None

let fact_step s (i : Rtl.inst) =
  let s =
    match i.kind with
    | Rtl.Store _ -> FactSet.filter (fun (_, k) -> not (is_load_key k)) s
    | Rtl.Call _ -> FactSet.empty
    | _ -> s
  in
  let ds = Rtl.defs i.kind in
  let s =
    if ds = [] then s
    else
      FactSet.filter
        (fun (d, k) ->
          not
            (List.exists
               (fun r ->
                 Reg.id r = d || List.exists (Reg.equal r) (akey_regs k))
               ds))
        s
  in
  match gen_fact i with
  | Some (d, k) -> FactSet.add (Reg.id d, k) s
  | None -> s

(* forward must-analysis: in = ∩ preds out, out = transfer (in) *)
let solve_avail (cfg : Cfg.t) =
  let n = Array.length cfg.blocks in
  let universe =
    List.fold_left
      (fun s i ->
        match gen_fact i with
        | Some (d, k) -> FactSet.add (Reg.id d, k) s
        | None -> s)
      FactSet.empty cfg.func.Func.body
  in
  let inb = Array.make n FactSet.empty in
  let outb = Array.make n universe in
  let entry = Cfg.entry cfg in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (b : Cfg.block) ->
        let i = b.index in
        let in_ =
          if i = entry then FactSet.empty
          else
            match cfg.pred.(i) with
            | [] -> FactSet.empty
            | p :: ps ->
              List.fold_left
                (fun acc q -> FactSet.inter acc outb.(q))
                outb.(p) ps
        in
        let out = List.fold_left fact_step in_ b.insts in
        if
          (not (FactSet.equal in_ inb.(i)))
          || not (FactSet.equal out outb.(i))
        then begin
          inb.(i) <- in_;
          outb.(i) <- out;
          changed := true
        end)
      cfg.blocks
  done;
  inb

(* ------------------------------------------------------------------ *)
(* Entry-environment seeding. For the old block's entry we know (a) the
   available equalities above and (b) the congruence solution: exact
   constants, and registers still holding [entry q + off]. Each fact is
   expanded into a term over entry symbols; every register's candidates
   collapse to one canonical choice (smallest term), and both sides are
   executed under the same seeded environment — so a pass that replaced
   a computation by an equal available value still matches. *)

let seed_env ctx ~avail ~cong_st ~regs =
  let facts_of = Hashtbl.create 16 in
  FactSet.iter
    (fun (d, k) ->
      Hashtbl.replace facts_of d
        (k :: Option.value (Hashtbl.find_opt facts_of d) ~default:[]))
    avail;
  let memo = Hashtbl.create 16 in
  let rec term_of seen r =
    if List.exists (Reg.equal r) seen then Sx.Sym (Sx.SEntry r)
    else
      match Hashtbl.find_opt memo (Reg.id r) with
      | Some t -> t
      | None ->
        let seen = r :: seen in
        let operand = function
          | Rtl.Reg q -> term_of seen q
          | Rtl.Imm i -> Sx.Con i
        in
        let of_key = function
          | AMove o -> operand o
          | ABin (op, a, b) -> Sx.bin ctx op (operand a) (operand b)
          | AUn (op, a) -> Sx.un ctx op (operand a)
          | ALoad (m, sign) ->
            let a =
              Sx.bin ctx Rtl.Add (term_of seen m.Rtl.base)
                (Sx.Con m.Rtl.disp)
            in
            let a =
              if m.Rtl.aligned then a
              else
                Sx.bin ctx Rtl.And a
                  (Sx.Con (Int64.of_int (-Width.bytes m.Rtl.width)))
            in
            Sx.read ctx (Sx.MSym Sx.MEntry) a m.Rtl.width sign
          | AExt (src, pos, w, sign) ->
            Sx.ext ctx (term_of seen src) (operand pos) w sign
        in
        let cands =
          (match Congruence.exact (Congruence.value_of cong_st r) with
          | Some c -> [ Sx.Con c ]
          | None -> (
            match Congruence.exact_affine (Congruence.value_of cong_st r) with
            | Some (q, off)
              when (not (Reg.equal q r))
                   && Congruence.value_equal
                        (Congruence.value_of cong_st q)
                        (Congruence.entry q) ->
              [ Sx.bin ctx Rtl.Add (term_of seen q) (Sx.Con off) ]
            | _ -> []))
          @ List.map of_key
              (Option.value (Hashtbl.find_opt facts_of (Reg.id r))
                 ~default:[])
        in
        let t =
          match cands with
          | [] -> Sx.Sym (Sx.SEntry r)
          | c :: cs ->
            List.fold_left
              (fun best t ->
                let sb = Sx.term_size best and st = Sx.term_size t in
                if st < sb || (st = sb && Sx.compare_term t best < 0) then t
                else best)
              c cs
        in
        Hashtbl.replace memo (Reg.id r) t;
        t
  in
  let bindings =
    List.filter_map
      (fun r ->
        let t = term_of [] r in
        match t with
        | Sx.Sym (Sx.SEntry r') when Reg.equal r r' -> None
        | _ -> Some (r, t))
      regs
  in
  {
    Sx.empty_env with
    Sx.regs =
      List.fold_left
        (fun m (r, t) -> Reg.Map.add r t m)
        Reg.Map.empty bindings;
  }

(* ------------------------------------------------------------------ *)
(* The cross-base disambiguation oracle: evaluate both address terms to
   congruence values over the old function's entry symbols, take their
   low-3-bit residues under the asserted alignment facts, and call the
   ranges disjoint when their footprint byte sets mod 8 cannot meet
   (addresses with different residues are different addresses). *)

let congruence_oracle st (aligns : (Reg.t * int) list) =
  let sym_align r =
    match List.find_opt (fun (q, _) -> Reg.equal q r) aligns with
    | Some (_, k) -> k
    | None -> 0
  in
  let rec cvalue = function
    | Sx.Con c -> Congruence.const c
    | Sx.Sym (Sx.SEntry r) -> Congruence.value_of st r
    | Sx.Bin (Rtl.Add, a, b) -> Congruence.add (cvalue a) (cvalue b)
    | Sx.Bin (Rtl.Mul, a, Sx.Con c) -> Congruence.mul_const (cvalue a) c
    | Sx.Bin (Rtl.Shl, a, Sx.Con k)
      when Int64.compare k 0L >= 0 && Int64.compare k 62L <= 0 ->
      Congruence.mul_const (cvalue a)
        (Int64.shift_left 1L (Int64.to_int k))
    | Sx.Bin (Rtl.And, _, Sx.Con c)
      when Int64.compare c 0L < 0 && Width.log2_exact (Int64.neg c) <> None
      ->
      (* x & -2^j is a multiple of 2^j *)
      Congruence.make ~sym:None ~stride:0L ~off:0L
        ~k:(Option.get (Width.log2_exact (Int64.neg c)))
    | _ -> Congruence.top
  in
  fun a wa b wb ->
    wa + wb <= 8
    &&
    match
      ( Congruence.residue ~sym_align (cvalue a) ~bits:3,
        Congruence.residue ~sym_align (cvalue b) ~bits:3 )
    with
    | Some ra, Some rb ->
      let footprint r w =
        let r = Int64.to_int r in
        List.init w (fun i -> (r + i) land 7)
      in
      let fa = footprint ra wa in
      List.for_all (fun x -> not (List.mem x fa)) (footprint rb wb)
    | _ -> false

(* ------------------------------------------------------------------ *)
(* CFG navigation: trivial blocks (label/nop/jump only) are chased
   through when resolving edges, and a unit keeps executing into an
   unconditional successor that no other chased edge reaches — the same
   merges cleanflow performs, applied virtually to both sides. *)

let is_trivial (b : Cfg.block) =
  match List.rev (Cfg.non_label_insts b) with
  | [] -> true
  | last :: rest ->
    (match last.Rtl.kind with
    | Rtl.Jump _ | Rtl.Nop -> true
    | _ -> false)
    && List.for_all (fun i -> i.Rtl.kind = Rtl.Nop) rest

let chase (cfg : Cfg.t) t =
  let rec go fuel t =
    if fuel = 0 then t
    else
      let b = cfg.blocks.(t) in
      if is_trivial b then
        match cfg.succ.(t) with [ s ] when s <> t -> go (fuel - 1) s | _ -> t
      else t
  in
  go 32 t

(* effective in-degree: edges counted through trivial chains, so the
   number is stable whether or not cleanflow already rethreaded them *)
let effective_indegree (cfg : Cfg.t) =
  let n = Array.length cfg.blocks in
  let deg = Array.make n 0 in
  let reach = Cfg.reachable cfg in
  Array.iter
    (fun (b : Cfg.block) ->
      if reach.(b.index) && not (is_trivial b) then
        List.iter
          (fun s ->
            let t = chase cfg s in
            deg.(t) <- deg.(t) + 1)
          cfg.succ.(b.index))
    cfg.blocks;
  deg

type unit_exit =
  | XJump of int
  | XCond of Sx.term * int * int  (* cond, taken, fallthrough *)
  | XRet of Sx.term option

exception Stuck of string

(* symbolically execute the unit starting at block [b]: straight-line
   instructions, then the terminator; keep going into an unconditional
   successor only this unit reaches *)
(* [stop t] marks region cut-points (transformed-loop headers): a unit
   never executes across one, even when it is the target's only
   predecessor — the region carve must see the pairing stop there on
   both sides *)
let run_unit ctx (cfg : Cfg.t) deg ~stop env b =
  let next_in_body i =
    (* fallthrough successor: the unique successor that is not a branch
       target — by construction of Cfg it is the following block *)
    match cfg.succ.(i) with
    | [ s ] -> s
    | [ s1; s2 ] -> (
      let b = cfg.blocks.(i) in
      match List.rev b.insts with
      | { Rtl.kind = Rtl.Branch { target; _ }; _ } :: _ -> (
        match Cfg.block_of_label cfg target with
        | Some t when t = s1 -> s2
        | Some t when t = s2 -> s1
        | _ -> raise (Stuck "branch target outside cfg"))
      | _ -> raise (Stuck "two successors without a branch"))
    | _ -> raise (Stuck "unexpected successor count")
  in
  let rec go visited env b =
    let blk = cfg.blocks.(b) in
    let env = Sx.exec_insts ctx env blk.insts in
    let exit_ =
      match List.rev blk.insts with
      | { Rtl.kind = Rtl.Ret o; _ } :: _ ->
        XRet (Option.map (Sx.operand env) o)
      | { Rtl.kind = Rtl.Jump l; _ } :: _ -> (
        match Cfg.block_of_label cfg l with
        | Some t -> XJump (chase cfg t)
        | None -> raise (Stuck ("jump to unknown label " ^ l)))
      | { Rtl.kind = Rtl.Branch { cmp; l; r; target }; _ } :: _ -> (
        let cond =
          Sx.bin ctx (Rtl.Cmp cmp) (Sx.operand env l) (Sx.operand env r)
        in
        let taken =
          match Cfg.block_of_label cfg target with
          | Some t -> chase cfg t
          | None -> raise (Stuck ("branch to unknown label " ^ target))
        in
        let fall = chase cfg (next_in_body b) in
        match cond with
        | Sx.Con 0L -> XJump fall
        | Sx.Con _ -> XJump taken
        | _ when taken = fall -> XJump taken
        | _ -> XCond (cond, taken, fall))
      | _ -> XJump (chase cfg (next_in_body b))
    in
    match exit_ with
    | XJump t
      when deg.(t) <= 1
           && (not (stop t))
           && (not (List.mem t visited))
           && t <> b
           && List.length visited < 64 ->
      go (t :: visited) env t
    | e -> (env, e)
  in
  go [ b ] env b

(* ------------------------------------------------------------------ *)
(* Region carving for the loop restructurers. *)

type regions = {
  headers : (Rtl.label * string) list;  (** transformed loop, reason *)
}

let regions_of ~pass ~reports ~sched_reports =
  match pass with
  | "coalesce" ->
    {
      headers =
        List.filter_map
          (fun (r : Coalesce.loop_report) ->
            match r.Coalesce.main_label with
            | Some _ ->
              Some
                ( r.Coalesce.header,
                  "coalesce certificate (audited at Vfull)" )
            | None -> None)
          reports;
    }
  | "pipeline-sched" ->
    {
      headers =
        List.filter_map
          (fun ((r : Ps.report), _) ->
            match r.Ps.status with
            | Ps.Pipelined ->
              Some (r.Ps.header, "schedule certificate (audited at Vfull)")
            | _ -> None)
          sched_reports;
    }
  | _ -> { headers = [] }

let first_real_uid (b : Cfg.block) =
  List.find_map
    (fun (i : Rtl.inst) ->
      match i.kind with Rtl.Label _ -> None | _ -> Some i.uid)
    b.insts

(* the continuation of a transformed loop on the new side: the block
   whose first real instruction is the old continuation's (uids of
   untouched code survive the transformation), else the same label *)
let find_continuation (ocfg : Cfg.t) (ncfg : Cfg.t) oc =
  let ob = ocfg.blocks.(oc) in
  let by_uid =
    match first_real_uid ob with
    | None -> None
    | Some uid ->
      Array.fold_left
        (fun acc (nb : Cfg.block) ->
          match acc with
          | Some _ -> acc
          | None ->
            if first_real_uid nb = Some uid then Some nb.index else None)
        None ncfg.blocks
  in
  match by_uid with
  | Some nc -> Some nc
  | None -> (
    match ob.label with
    | Some l -> Cfg.block_of_label ncfg l
    | None -> None)

(* ------------------------------------------------------------------ *)

let validate ~machine ~(facts : Disambig.facts) ~pass ?(reports = [])
    ?(sched_reports = []) ~(old_f : Func.t) ~(new_f : Func.t) () =
  let fname = new_f.Func.name in
  let err ?uid fmt =
    Format.kasprintf
      (fun s -> Error (Diagnostic.error ~pass ~func:fname ?uid s))
      fmt
  in
  match classify pass with
  | Fallback ->
    Ok
      {
        blocks_checked = 0;
        regions_skipped = 0;
        fallback = Some "renaming pass: Rtlcheck + certificate audits only";
        warnings = [];
      }
  | Exact | Region -> (
    let regions = regions_of ~pass ~reports ~sched_reports in
    try
      let ocfg = Cfg.build old_f and ncfg = Cfg.build new_f in
      let cong = Congruence.solve ~consts:facts.Disambig.values ocfg in
      let avail = solve_avail ocfg in
      let nlive = Liveness.compute ncfg in
      let odeg = effective_indegree ocfg
      and ndeg = effective_indegree ncfg in
      let stop_of cfg =
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun (l, _) ->
            match Cfg.block_of_label cfg l with
            | Some i -> Hashtbl.replace tbl i ()
            | None -> ())
          regions.headers;
        fun i -> Hashtbl.mem tbl i
      in
      let ostop = stop_of ocfg and nstop = stop_of ncfg in
      (* registers worth seeding: everything either side mentions *)
      let reg_universe =
        let tbl = Hashtbl.create 64 in
        let add r = Hashtbl.replace tbl (Reg.id r) r in
        List.iter
          (fun (f : Func.t) ->
            List.iter add f.params;
            Option.iter add f.fp_reg;
            List.iter
              (fun (i : Rtl.inst) ->
                List.iter add (Rtl.defs i.kind);
                List.iter add (Rtl.uses i.kind))
              f.body)
          [ old_f; new_f ];
        Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
        |> List.sort Reg.compare
      in
      let blocks_checked = ref 0 in
      let regions_skipped = ref 0 in
      let warnings = ref [] in
      let pair_o2n = Hashtbl.create 16 in
      let pair_n2o = Hashtbl.create 16 in
      let queue = Queue.create () in
      let enqueue ob nb = Queue.add (ob, nb) queue in
      enqueue (chase ocfg (Cfg.entry ocfg)) (chase ncfg (Cfg.entry ncfg));
      let mismatch where a b =
        let da, db = Sx.first_diff a b in
        err "%s of %s differ after %s: %a vs %a" where fname pass
          Sx.pp_term da Sx.pp_term db
      in
      let result = ref None in
      let fail e = if !result = None then result := Some e in
      while (not (Queue.is_empty queue)) && !result = None do
        let ob, nb = Queue.pop queue in
        match Hashtbl.find_opt pair_o2n ob with
        | Some nb' ->
          if nb' <> nb then
            fail
              (err "block pairing is not 1:1 (old block %d vs %d/%d)" ob nb'
                 nb)
        | None -> (
          (match Hashtbl.find_opt pair_n2o nb with
          | Some ob' when ob' <> ob ->
            fail
              (err "block pairing is not 1:1 (new block %d vs %d/%d)" nb ob'
                 ob)
          | _ -> ());
          if !result <> None then ()
          else begin
            Hashtbl.replace pair_o2n ob nb;
            Hashtbl.replace pair_n2o nb ob;
            let oblk = ocfg.blocks.(ob) in
            let region =
              match oblk.label with
              | Some l ->
                List.find_opt (fun (h, _) -> String.equal h l)
                  regions.headers
              | None -> None
            in
            match region with
            | Some (hdr, reason) -> (
              (* carve the transformed loop out: resume at its
                 continuation, justified by the pass's own certificate *)
              incr regions_skipped;
              let cont =
                match
                  List.filter (fun s -> s <> ob) ocfg.succ.(ob)
                with
                | [ oc ] -> Some (chase ocfg oc)
                | _ -> None
              in
              match cont with
              | None ->
                warnings :=
                  Diagnostic.warningf ~pass ~func:fname
                    "loop %s: no unique continuation; matching stopped \
                     at the region (%s)"
                    hdr reason
                  :: !warnings
              | Some oc -> (
                match find_continuation ocfg ncfg oc with
                | Some nc -> enqueue oc (chase ncfg nc)
                | None ->
                  warnings :=
                    Diagnostic.warningf ~pass ~func:fname
                      "loop %s: continuation anchor not found on the \
                       transformed side; matching stopped at the region \
                       (%s)"
                      hdr reason
                    :: !warnings))
            | None -> (
              let st = Congruence.block_in cong ob in
              let ctx =
                Sx.ctx
                  ~cross_disjoint:
                    (congruence_oracle st facts.Disambig.aligns)
                  machine.Mac_machine.Machine.word
              in
              let env0 =
                seed_env ctx ~avail:avail.(ob) ~cong_st:st
                  ~regs:reg_universe
              in
              match
                ( run_unit ctx ocfg odeg ~stop:ostop env0 ob,
                  run_unit ctx ncfg ndeg ~stop:nstop env0 nb )
              with
              | exception Stuck msg ->
                fail (err "symbolic execution stuck: %s" msg)
              | (oenv, oexit), (nenv, nexit) -> (
                incr blocks_checked;
                (* call events must line up exactly *)
                let oev = List.rev oenv.Sx.events
                and nev = List.rev nenv.Sx.events in
                let rec check_events oe ne =
                  match (oe, ne) with
                  | [], [] -> None
                  | o :: os, n :: ns ->
                    if not (String.equal o.Sx.ev_func n.Sx.ev_func) then
                      Some
                        (err
                           "call sequences differ after %s: %s vs %s" pass
                           o.Sx.ev_func n.Sx.ev_func)
                    else if
                      List.length o.Sx.ev_args <> List.length n.Sx.ev_args
                    then
                      Some
                        (err "call %s: argument counts differ after %s"
                           o.Sx.ev_func pass)
                    else (
                      match
                        List.find_opt
                          (fun (a, b) -> not (Sx.equal a b))
                          (List.combine o.Sx.ev_args n.Sx.ev_args)
                      with
                      | Some (a, b) ->
                        Some
                          (mismatch
                             (Printf.sprintf "arguments of call %s"
                                o.Sx.ev_func)
                             a b)
                      | None -> check_events os ns)
                  | _ ->
                    Some
                      (err
                         "call counts differ after %s (%d vs %d events)"
                         pass (List.length oev) (List.length nev))
                in
                (match check_events oev nev with
                | Some e -> fail e
                | None -> ());
                (* memory must agree at the unit's exit *)
                (if !result = None
                 && not (Sx.equal_mem oenv.Sx.mem nenv.Sx.mem)
                then
                  match Sx.first_diff_mem oenv.Sx.mem nenv.Sx.mem with
                  | Either.Left (a, b) -> fail (mismatch "stored values" a b)
                  | Either.Right (m1, m2) ->
                    fail
                      (err
                         "memory states differ after %s: %a vs %a" pass
                         Sx.pp_mem m1 Sx.pp_mem m2));
                if !result = None then
                  (* live registers must agree along every matched edge *)
                  let check_edge osucc nsucc =
                    let live = Liveness.live_in nlive nsucc in
                    (match
                       Reg.Set.fold
                         (fun r acc ->
                           match acc with
                           | Some _ -> acc
                           | None ->
                             let a = Sx.lookup oenv r
                             and b = Sx.lookup nenv r in
                             if Sx.equal a b then None else Some (r, a, b))
                         live None
                     with
                    | Some (r, a, b) ->
                      fail
                        (mismatch
                           (Printf.sprintf "values of %s" (Reg.to_string r))
                           a b)
                    | None -> enqueue osucc nsucc)
                  in
                  match (oexit, nexit) with
                  | XRet a, XRet b -> (
                    match (a, b) with
                    | None, None -> ()
                    | Some ta, Some tb ->
                      if not (Sx.equal ta tb) then
                        fail (mismatch "return values" ta tb)
                    | _ ->
                      fail
                        (err "return arity differs after %s" pass))
                  | XJump ot, XJump nt -> check_edge ot nt
                  | XCond (oc, ota, ofa), XCond (nc, nta, nfa) ->
                    if Sx.equal oc nc then begin
                      check_edge ota nta;
                      if !result = None then check_edge ofa nfa
                    end
                    else if
                      match Sx.negate_cond ctx nc with
                      | Some nc' -> Sx.equal oc nc'
                      | None -> false
                    then begin
                      check_edge ota nfa;
                      if !result = None then check_edge ofa nta
                    end
                    else fail (mismatch "branch conditions" oc nc)
                  | _ ->
                    let shape = function
                      | XJump _ -> "jump"
                      | XCond _ -> "branch"
                      | XRet _ -> "return"
                    in
                    fail
                      (err
                         "control shapes differ after %s: old block %d \
                          ends in a %s, new block %d in a %s"
                         pass ob (shape oexit) nb (shape nexit))))
          end)
      done;
      match !result with
      | Some (Error _ as e) -> e
      | Some (Ok _) | None ->
        Ok
          {
            blocks_checked = !blocks_checked;
            regions_skipped = !regions_skipped;
            fallback = None;
            warnings = List.rev !warnings;
          }
    with e ->
      err "internal validator failure: %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)

type agg = {
  mutable runs : int;
  mutable blocks : int;
  mutable regions : int;
  mutable fallbacks : int;
  mutable seconds : float;
}

let agg_zero () =
  { runs = 0; blocks = 0; regions = 0; fallbacks = 0; seconds = 0. }

let pp_result ppf r =
  Format.fprintf ppf "%d block pair(s), %d region(s) skipped%s"
    r.blocks_checked r.regions_skipped
    (match r.fallback with
    | Some reason -> Printf.sprintf " [fallback: %s]" reason
    | None -> "")
