open Mac_rtl
module Cfg = Mac_cfg.Cfg
module Congruence = Mac_dataflow.Congruence
module Liveness = Mac_dataflow.Liveness
module Disambig = Mac_core.Disambig
module Coalesce = Mac_core.Coalesce
module Ps = Mac_opt.Pipeline_sched
module Sx = Symexec

type pass_class = Exact | Region | Fallback

(* The classic round, legalization and the per-block list scheduler keep
   the loop structure: they are matched exactly. The two loop
   restructurers are matched with region cut-points. Strength reduction
   rewrites induction variables wholesale and regalloc renames every
   register; both fall back to Rtlcheck + their own audits. *)
let classify = function
  | "simplify" | "copyprop" | "cse" | "combine" | "cleanflow" | "dce"
  | "legalize" | "legalize-first" | "schedule" ->
    Exact
  | "coalesce" | "pipeline-sched" -> Region
  | _ -> Fallback

type result = {
  blocks_checked : int;
  blocks_skipped : int;
  regions_skipped : int;
  fallback : string option;
  warnings : Diagnostic.t list;
}

let snapshot (f : Func.t) = { f with Func.name = f.Func.name }

(* ------------------------------------------------------------------ *)
(* Available equalities at block entry of the old function. A fact
   [(d, rhs)] at a block's entry means the register [d] currently holds
   the value of [rhs] over the {e current} values of its operand
   registers — exactly the justification CSE and copy propagation use
   when they reuse a value across a block boundary. Facts die when the
   defined register or an operand is redefined; load facts die at every
   store; calls kill everything. *)

type akey =
  | AMove of Rtl.operand
  | ABin of Rtl.binop * Rtl.operand * Rtl.operand
  | AUn of Rtl.unop * Rtl.operand
  | ALoad of Rtl.mem * Rtl.signedness
  | AExt of Reg.t * Rtl.operand * Width.t * Rtl.signedness

module FactSet = Set.Make (struct
  type t = int * akey

  let compare = Stdlib.compare
end)

let akey_regs = function
  | AMove (Rtl.Reg r) -> [ r ]
  | AMove (Rtl.Imm _) -> []
  | ABin (_, a, b) ->
    List.filter_map (function Rtl.Reg r -> Some r | _ -> None) [ a; b ]
  | AUn (_, Rtl.Reg r) -> [ r ]
  | AUn (_, Rtl.Imm _) -> []
  | ALoad (m, _) -> [ m.Rtl.base ]
  | AExt (src, pos, _, _) -> (
    src :: (match pos with Rtl.Reg r -> [ r ] | Rtl.Imm _ -> []))

let is_load_key = function ALoad _ -> true | _ -> false

let gen_fact (i : Rtl.inst) =
  let ok d key = not (List.exists (Reg.equal d) (akey_regs key)) in
  match i.kind with
  | Rtl.Move (d, o) ->
    let k = AMove o in
    if ok d k then Some (d, k) else None
  | Rtl.Binop (op, d, a, b) ->
    let k = ABin (op, a, b) in
    if ok d k then Some (d, k) else None
  | Rtl.Unop (op, d, a) ->
    let k = AUn (op, a) in
    if ok d k then Some (d, k) else None
  | Rtl.Load { dst; src; sign } ->
    let k = ALoad (src, sign) in
    if ok dst k then Some (dst, k) else None
  | Rtl.Extract { dst; src; pos; width; sign } ->
    let k = AExt (src, pos, width, sign) in
    if ok dst k then Some (dst, k) else None
  | _ -> None

let fact_step s (i : Rtl.inst) =
  let s =
    match i.kind with
    | Rtl.Store _ -> FactSet.filter (fun (_, k) -> not (is_load_key k)) s
    | Rtl.Call _ -> FactSet.empty
    | _ -> s
  in
  let ds = Rtl.defs i.kind in
  let s =
    if ds = [] then s
    else
      FactSet.filter
        (fun (d, k) ->
          not
            (List.exists
               (fun r ->
                 Reg.id r = d || List.exists (Reg.equal r) (akey_regs k))
               ds))
        s
  in
  match gen_fact i with
  | Some (d, k) -> FactSet.add (Reg.id d, k) s
  | None -> s

(* forward must-analysis: in = ∩ preds out, out = transfer (in) *)
let solve_avail (cfg : Cfg.t) =
  let n = Array.length cfg.blocks in
  let universe =
    List.fold_left
      (fun s i ->
        match gen_fact i with
        | Some (d, k) -> FactSet.add (Reg.id d, k) s
        | None -> s)
      FactSet.empty cfg.func.Func.body
  in
  let inb = Array.make n FactSet.empty in
  let outb = Array.make n universe in
  let entry = Cfg.entry cfg in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (b : Cfg.block) ->
        let i = b.index in
        let in_ =
          if i = entry then FactSet.empty
          else
            match cfg.pred.(i) with
            | [] -> FactSet.empty
            | p :: ps ->
              List.fold_left
                (fun acc q -> FactSet.inter acc outb.(q))
                outb.(p) ps
        in
        let out = List.fold_left fact_step in_ b.insts in
        if
          (not (FactSet.equal in_ inb.(i)))
          || not (FactSet.equal out outb.(i))
        then begin
          inb.(i) <- in_;
          outb.(i) <- out;
          changed := true
        end)
      cfg.blocks
  done;
  inb

(* ------------------------------------------------------------------ *)
(* Entry-environment seeding. For the old block's entry we know (a) the
   available equalities above and (b) the congruence solution: exact
   constants, and registers still holding [entry q + off]. Each fact is
   expanded into a term over entry symbols; every register's candidates
   collapse to one canonical choice (smallest term), and both sides are
   executed under the same seeded environment — so a pass that replaced
   a computation by an equal available value still matches. *)

let seed_env ctx ~avail ~cong_st ~regs =
  let facts_of = Hashtbl.create 16 in
  FactSet.iter
    (fun (d, k) ->
      Hashtbl.replace facts_of d
        (k :: Option.value (Hashtbl.find_opt facts_of d) ~default:[]))
    avail;
  let memo = Hashtbl.create 16 in
  let rec term_of seen r =
    if List.exists (Reg.equal r) seen then Sx.Sym (Sx.SEntry r)
    else
      match Hashtbl.find_opt memo (Reg.id r) with
      | Some t -> t
      | None ->
        let seen = r :: seen in
        let operand = function
          | Rtl.Reg q -> term_of seen q
          | Rtl.Imm i -> Sx.Con i
        in
        let of_key = function
          | AMove o -> operand o
          | ABin (op, a, b) -> Sx.bin ctx op (operand a) (operand b)
          | AUn (op, a) -> Sx.un ctx op (operand a)
          | ALoad (m, sign) ->
            let a =
              Sx.bin ctx Rtl.Add (term_of seen m.Rtl.base)
                (Sx.Con m.Rtl.disp)
            in
            let a =
              if m.Rtl.aligned then a
              else
                Sx.bin ctx Rtl.And a
                  (Sx.Con (Int64.of_int (-Width.bytes m.Rtl.width)))
            in
            Sx.read ctx (Sx.MSym Sx.MEntry) a m.Rtl.width sign
          | AExt (src, pos, w, sign) ->
            Sx.ext ctx (term_of seen src) (operand pos) w sign
        in
        let cands =
          (match Congruence.exact (Congruence.value_of cong_st r) with
          | Some c -> [ Sx.Con c ]
          | None -> (
            match Congruence.exact_affine (Congruence.value_of cong_st r) with
            | Some (q, off)
              when (not (Reg.equal q r))
                   && Congruence.value_equal
                        (Congruence.value_of cong_st q)
                        (Congruence.entry q) ->
              [ Sx.bin ctx Rtl.Add (term_of seen q) (Sx.Con off) ]
            | _ -> []))
          @ List.map of_key
              (Option.value (Hashtbl.find_opt facts_of (Reg.id r))
                 ~default:[])
        in
        let t =
          match cands with
          | [] -> Sx.Sym (Sx.SEntry r)
          | c :: cs ->
            List.fold_left
              (fun best t ->
                let sb = Sx.term_size best and st = Sx.term_size t in
                if st < sb || (st = sb && Sx.compare_term t best < 0) then t
                else best)
              c cs
        in
        Hashtbl.replace memo (Reg.id r) t;
        t
  in
  let bindings =
    List.filter_map
      (fun r ->
        let t = term_of [] r in
        match t with
        | Sx.Sym (Sx.SEntry r') when Reg.equal r r' -> None
        | _ -> Some (r, t))
      regs
  in
  {
    Sx.empty_env with
    Sx.regs =
      List.fold_left
        (fun m (r, t) -> Reg.Map.add r t m)
        Reg.Map.empty bindings;
  }

(* ------------------------------------------------------------------ *)
(* The cross-base disambiguation oracle: evaluate both address terms to
   congruence values over the old function's entry symbols, take their
   low-3-bit residues under the asserted alignment facts, and call the
   ranges disjoint when their footprint byte sets mod 8 cannot meet
   (addresses with different residues are different addresses). *)

let congruence_oracle st (aligns : (Reg.t * int) list) =
  let sym_align r =
    match List.find_opt (fun (q, _) -> Reg.equal q r) aligns with
    | Some (_, k) -> k
    | None -> 0
  in
  let rec cvalue = function
    | Sx.Con c -> Congruence.const c
    | Sx.Sym (Sx.SEntry r) -> Congruence.value_of st r
    | Sx.Bin (Rtl.Add, a, b) -> Congruence.add (cvalue a) (cvalue b)
    | Sx.Bin (Rtl.Mul, a, Sx.Con c) -> Congruence.mul_const (cvalue a) c
    | Sx.Bin (Rtl.Shl, a, Sx.Con k)
      when Int64.compare k 0L >= 0 && Int64.compare k 62L <= 0 ->
      Congruence.mul_const (cvalue a)
        (Int64.shift_left 1L (Int64.to_int k))
    | Sx.Bin (Rtl.And, _, Sx.Con c)
      when Int64.compare c 0L < 0 && Width.log2_exact (Int64.neg c) <> None
      ->
      (* x & -2^j is a multiple of 2^j *)
      Congruence.make ~sym:None ~stride:0L ~off:0L
        ~k:(Option.get (Width.log2_exact (Int64.neg c)))
    | _ -> Congruence.top
  in
  fun a wa b wb ->
    wa + wb <= 8
    &&
    match
      ( Congruence.residue ~sym_align (cvalue a) ~bits:3,
        Congruence.residue ~sym_align (cvalue b) ~bits:3 )
    with
    | Some ra, Some rb ->
      let footprint r w =
        let r = Int64.to_int r in
        List.init w (fun i -> (r + i) land 7)
      in
      let fa = footprint ra wa in
      List.for_all (fun x -> not (List.mem x fa)) (footprint rb wb)
    | _ -> false

(* ------------------------------------------------------------------ *)
(* CFG navigation: trivial blocks (label/nop/jump only) are chased
   through when resolving edges, and a unit keeps executing into an
   unconditional successor that no other chased edge reaches — the same
   merges cleanflow performs, applied virtually to both sides. *)

let is_trivial (b : Cfg.block) =
  match List.rev (Cfg.non_label_insts b) with
  | [] -> true
  | last :: rest ->
    (match last.Rtl.kind with
    | Rtl.Jump _ | Rtl.Nop -> true
    | _ -> false)
    && List.for_all (fun i -> i.Rtl.kind = Rtl.Nop) rest

let chase (cfg : Cfg.t) t =
  let rec go fuel t =
    if fuel = 0 then t
    else
      let b = cfg.blocks.(t) in
      if is_trivial b then
        match cfg.succ.(t) with [ s ] when s <> t -> go (fuel - 1) s | _ -> t
      else t
  in
  go 32 t

(* effective in-degree: edges counted through trivial chains, so the
   number is stable whether or not cleanflow already rethreaded them *)
let effective_indegree (cfg : Cfg.t) =
  let n = Array.length cfg.blocks in
  let deg = Array.make n 0 in
  let reach = Cfg.reachable cfg in
  Array.iter
    (fun (b : Cfg.block) ->
      if reach.(b.index) && not (is_trivial b) then
        List.iter
          (fun s ->
            let t = chase cfg s in
            deg.(t) <- deg.(t) + 1)
          cfg.succ.(b.index))
    cfg.blocks;
  deg

type unit_exit =
  | XJump of int
  | XCond of Sx.term * int * int  (* cond, taken, fallthrough *)
  | XRet of Sx.term option

exception Stuck of string

(* fallthrough successor of block [i]: the unique successor that is not
   a branch target — by construction of Cfg it is the following block *)
let next_in_body (cfg : Cfg.t) i =
  match cfg.succ.(i) with
  | [ s ] -> s
  | [ s1; s2 ] -> (
    let b = cfg.blocks.(i) in
    match List.rev b.insts with
    | { Rtl.kind = Rtl.Branch { target; _ }; _ } :: _ -> (
      match Cfg.block_of_label cfg target with
      | Some t when t = s1 -> s2
      | Some t when t = s2 -> s1
      | _ -> raise (Stuck "branch target outside cfg"))
    | _ -> raise (Stuck "two successors without a branch"))
  | _ -> raise (Stuck "unexpected successor count")

(* symbolically execute the unit starting at block [b]: straight-line
   instructions, then the terminator; keep going into an unconditional
   successor only this unit reaches *)
(* [stop t] marks region cut-points (transformed-loop headers): a unit
   never executes across one, even when it is the target's only
   predecessor — the region carve must see the pairing stop there on
   both sides *)
let run_unit ctx (cfg : Cfg.t) deg ~stop env b =
  let next_in_body i = next_in_body cfg i in
  let rec go visited env b =
    let blk = cfg.blocks.(b) in
    let env = Sx.exec_insts ctx env blk.insts in
    let exit_ =
      match List.rev blk.insts with
      | { Rtl.kind = Rtl.Ret o; _ } :: _ ->
        XRet (Option.map (Sx.operand env) o)
      | { Rtl.kind = Rtl.Jump l; _ } :: _ -> (
        match Cfg.block_of_label cfg l with
        | Some t -> XJump (chase cfg t)
        | None -> raise (Stuck ("jump to unknown label " ^ l)))
      | { Rtl.kind = Rtl.Branch { cmp; l; r; target }; _ } :: _ -> (
        let cond =
          Sx.bin ctx (Rtl.Cmp cmp) (Sx.operand env l) (Sx.operand env r)
        in
        let taken =
          match Cfg.block_of_label cfg target with
          | Some t -> chase cfg t
          | None -> raise (Stuck ("branch to unknown label " ^ target))
        in
        let fall = chase cfg (next_in_body b) in
        match cond with
        | Sx.Con 0L -> XJump fall
        | Sx.Con _ -> XJump taken
        | _ when taken = fall -> XJump taken
        | _ -> XCond (cond, taken, fall))
      | _ -> XJump (chase cfg (next_in_body b))
    in
    match exit_ with
    | XJump t
      when deg.(t) <= 1
           && (not (stop t))
           && (not (List.mem t visited))
           && t <> b
           && List.length visited < 64 ->
      go (t :: visited) env t
    | e -> (env, e)
  in
  go [ b ] env b

(* ------------------------------------------------------------------ *)
(* Region carving for the loop restructurers. *)

type regions = {
  headers : (Rtl.label * string) list;  (** transformed loop, reason *)
}

let regions_of ~pass ~reports ~sched_reports =
  match pass with
  | "coalesce" ->
    {
      headers =
        List.filter_map
          (fun (r : Coalesce.loop_report) ->
            match r.Coalesce.main_label with
            | Some _ ->
              Some
                ( r.Coalesce.header,
                  "coalesce certificate (audited at Vfull)" )
            | None -> None)
          reports;
    }
  | "pipeline-sched" ->
    {
      headers =
        List.filter_map
          (fun ((r : Ps.report), _) ->
            match r.Ps.status with
            | Ps.Pipelined ->
              Some (r.Ps.header, "schedule certificate (audited at Vfull)")
            | _ -> None)
          sched_reports;
    }
  | _ -> { headers = [] }

let first_real_uid (b : Cfg.block) =
  List.find_map
    (fun (i : Rtl.inst) ->
      match i.kind with Rtl.Label _ -> None | _ -> Some i.uid)
    b.insts

(* the continuation of a transformed loop on the new side: the block
   whose first real instruction is the old continuation's (uids of
   untouched code survive the transformation), else the same label *)
let find_continuation (ocfg : Cfg.t) (ncfg : Cfg.t) oc =
  let ob = ocfg.blocks.(oc) in
  let by_uid =
    match first_real_uid ob with
    | None -> None
    | Some uid ->
      Array.fold_left
        (fun acc (nb : Cfg.block) ->
          match acc with
          | Some _ -> acc
          | None ->
            if first_real_uid nb = Some uid then Some nb.index else None)
        None ncfg.blocks
  in
  match by_uid with
  | Some nc -> Some nc
  | None -> (
    match ob.label with
    | Some l -> Cfg.block_of_label ncfg l
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Cross-pass memoization. A pipeline run validates ~15 passes over the
   same function, and between any two consecutive validations the old
   side of the later one IS the new side of the earlier one; within one
   validation most block pairs are byte-identical because a pass only
   rewrote a few blocks. The cache exploits both:

   - [summaries] memoise the per-body artifacts (CFG view, effective
     in-degrees, and — lazily, only when some pair needs a full check —
     the congruence solution, the available-expression facts and
     liveness), keyed by the body content itself (function name plus the
     (uid, kind) instruction list) and the facts record.
   - [xfers] memoise a block's {e generic transfer}: its symbolic
     environment and exit descriptor executed from the empty environment
     (every register at its entry symbol), keyed by the machine word and
     the block's kind list — uid-independent, so the same block hashed
     on the old and new side of a pass lands on the same entry.
   - [it] is the hash-consing arena every context threads through, so a
     term built by an early validation stays physically comparable to
     one built ten passes later.

   Keys are the content: lookups hash a bounded prefix of the structure
   and confirm with a structural comparison, so a hash collision costs a
   recomputation, never a wrong hit. [cache_audit] re-derives every
   stored key from the stored content (and re-flattens each cached CFG
   view against the body it claims to describe) — a poisoned mapping is
   a verification error, surfaced through {!Mac_dataflow.Analysis}'s
   [coherent] probe. *)

module Analysis = Mac_dataflow.Analysis

type side_summary = {
  s_name : string;
  s_body : (int * Rtl.kind) list;  (* the key: (uid, kind) per inst *)
  s_facts : Disambig.facts;  (* compared physically; per-compile value *)
  s_cfg : Cfg.t;
  s_deg : int array;
  s_cong : Congruence.t Lazy.t;
  s_avail : FactSet.t array Lazy.t;
  s_live : Liveness.t Lazy.t;
}

type xfer_exit =
  | TRet of Sx.term option
  | TJump of Rtl.label
  | TBranch of Sx.term * Rtl.label  (* cond, taken label *)
  | TFall

type xfer = {
  x_kinds : Rtl.kind list;  (* the key *)
  x_word : Width.t;
  x_env : Sx.env;
  x_exit : xfer_exit;
}

type cache = {
  it : Sx.interner;
  summaries : (int, side_summary) Hashtbl.t;
  xfers : (int, xfer) Hashtbl.t;
  mutable xfer_count : int;
}

(* caps keep the audit cheap and the tables per-function-sized; both
   tables are pure memos, so resetting them is always sound *)
let max_summaries = 8
let max_xfers = 512

let create_cache () =
  {
    it = Sx.interner ();
    summaries = Hashtbl.create max_summaries;
    xfers = Hashtbl.create 64;
    xfer_count = 0;
  }

let body_content (f : Func.t) =
  List.map (fun (i : Rtl.inst) -> (i.Rtl.uid, i.Rtl.kind)) f.Func.body

(* bounded-prefix hash: collisions are resolved by the structural compare
   at each lookup, so the bound trades hash quality for speed only *)
let summary_hash name content = Hashtbl.hash_param 128 512 (name, content)
let xfer_hash word kinds = Hashtbl.hash_param 128 512 (word, kinds)

let side_of cache ~(facts : Disambig.facts) (f : Func.t) =
  let content = body_content f in
  let name = f.Func.name in
  let h = summary_hash name content in
  match
    List.find_opt
      (fun s ->
        s.s_facts == facts && String.equal s.s_name name
        && s.s_body = content)
      (Hashtbl.find_all cache.summaries h)
  with
  | Some s -> s
  | None ->
    (* freeze the body: the caller's [f] is mutated in place by later
       passes, and the lazy fields may not force until then *)
    let f = snapshot f in
    let cfg = Cfg.build f in
    let s =
      {
        s_name = name;
        s_body = content;
        s_facts = facts;
        s_cfg = cfg;
        s_deg = effective_indegree cfg;
        s_cong = lazy (Congruence.solve ~consts:facts.Disambig.values cfg);
        s_avail = lazy (solve_avail cfg);
        s_live = lazy (Liveness.compute cfg);
      }
    in
    if Hashtbl.length cache.summaries >= max_summaries then
      Hashtbl.reset cache.summaries;
    Hashtbl.add cache.summaries h s;
    s

let xfer_of cache (ctx : Sx.ctx) (blk : Cfg.block) =
  let kinds = List.map (fun (i : Rtl.inst) -> i.Rtl.kind) blk.Cfg.insts in
  let word = ctx.Sx.word in
  let h = xfer_hash word kinds in
  match
    List.find_opt
      (fun x -> x.x_word = word && x.x_kinds = kinds)
      (Hashtbl.find_all cache.xfers h)
  with
  | Some x -> x
  | None ->
    let env = Sx.exec_insts ctx Sx.empty_env blk.Cfg.insts in
    let exit_ =
      match List.rev blk.Cfg.insts with
      | { Rtl.kind = Rtl.Ret o; _ } :: _ ->
        TRet (Option.map (Sx.operand env) o)
      | { Rtl.kind = Rtl.Jump l; _ } :: _ -> TJump l
      | { Rtl.kind = Rtl.Branch { cmp; l; r; target }; _ } :: _ ->
        TBranch
          ( Sx.bin ctx (Rtl.Cmp cmp) (Sx.operand env l) (Sx.operand env r),
            target )
      | _ -> TFall
    in
    let x = { x_kinds = kinds; x_word = word; x_env = env; x_exit = exit_ } in
    if cache.xfer_count >= max_xfers then begin
      Hashtbl.reset cache.xfers;
      cache.xfer_count <- 0
    end;
    Hashtbl.add cache.xfers h x;
    cache.xfer_count <- cache.xfer_count + 1;
    x

let cache_audit cache =
  let summary_ok h s =
    if summary_hash s.s_name s.s_body <> h then
      Error
        (Printf.sprintf
           "summary for %s is filed under a key its content does not hash to"
           s.s_name)
    else
      let viewed =
        Array.to_list s.s_cfg.Cfg.blocks
        |> List.concat_map (fun (b : Cfg.block) -> b.Cfg.insts)
        |> List.map (fun (i : Rtl.inst) -> (i.Rtl.uid, i.Rtl.kind))
      in
      if viewed = s.s_body then Ok ()
      else
        Error
          (Printf.sprintf
             "summary for %s holds a CFG view that diverges from the body \
              it claims to describe"
             s.s_name)
  in
  let xfer_ok h x =
    if xfer_hash x.x_word x.x_kinds = h then Ok ()
    else Error "a block transfer is filed under a foreign key"
  in
  let fold check tbl =
    Hashtbl.fold
      (fun h v acc -> match acc with Error _ -> acc | Ok () -> check h v)
      tbl (Ok ())
  in
  match fold summary_ok cache.summaries with
  | Error _ as e -> e
  | Ok () -> fold xfer_ok cache.xfers

type Analysis.tvalid_cache += Cache of cache

let audit_slot = function
  | Cache c -> cache_audit c
  | _ -> Error "slot holds a foreign payload"

(* fetch the per-function cache from the analysis manager, creating (and
   registering, with its audit) a fresh one when a pass invalidated it *)
let cache_of_analysis am =
  match Analysis.tvalid_slot am with
  | Some (Cache c) -> c
  | Some _ | None ->
    let c = create_cache () in
    Analysis.set_tvalid am ~audit:audit_slot (Cache c);
    c

(* test seam: corrupt one cached mapping in place, as a lying pass (or a
   stale-entry bug) would; returns false when there is nothing to poison *)
let test_poison_cache cache =
  let victim =
    Hashtbl.fold
      (fun h s acc -> match acc with None -> Some (h, s) | some -> some)
      cache.summaries None
  in
  match victim with
  | None -> false
  | Some (h, s) ->
    Hashtbl.remove cache.summaries h;
    Hashtbl.add cache.summaries (h + 1) s;
    true

(* ------------------------------------------------------------------ *)

let validate ?cache ~machine ~(facts : Disambig.facts) ~pass ?(reports = [])
    ?(sched_reports = []) ~(old_f : Func.t) ~(new_f : Func.t) () =
  let fname = new_f.Func.name in
  let err ?uid fmt =
    Format.kasprintf
      (fun s -> Error (Diagnostic.error ~pass ~func:fname ?uid s))
      fmt
  in
  match classify pass with
  | Fallback ->
    Ok
      {
        blocks_checked = 0;
        blocks_skipped = 0;
        regions_skipped = 0;
        fallback = Some "renaming pass: Rtlcheck + certificate audits only";
        warnings = [];
      }
  | Exact | Region -> (
    let cache =
      match cache with Some c -> c | None -> create_cache ()
    in
    let regions = regions_of ~pass ~reports ~sched_reports in
    try
      let osum = side_of cache ~facts old_f
      and nsum = side_of cache ~facts new_f in
      let ocfg = osum.s_cfg and ncfg = nsum.s_cfg in
      let odeg = osum.s_deg and ndeg = nsum.s_deg in
      let stop_of cfg =
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun (l, _) ->
            match Cfg.block_of_label cfg l with
            | Some i -> Hashtbl.replace tbl i ()
            | None -> ())
          regions.headers;
        fun i -> Hashtbl.mem tbl i
      in
      let ostop = stop_of ocfg and nstop = stop_of ncfg in
      (* registers worth seeding: everything either side mentions —
         only needed when some pair reaches a full check *)
      let reg_universe =
        lazy
          (let tbl = Hashtbl.create 64 in
           let add r = Hashtbl.replace tbl (Reg.id r) r in
           List.iter
             (fun (f : Func.t) ->
               List.iter add f.params;
               Option.iter add f.fp_reg;
               List.iter
                 (fun (i : Rtl.inst) ->
                   List.iter add (Rtl.defs i.kind);
                   List.iter add (Rtl.uses i.kind))
                 f.body)
             [ old_f; new_f ];
           Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
           |> List.sort Reg.compare)
      in
      (* oracle-free context for generic block transfers; shares the
         arena with every seeded context below *)
      let gctx = Sx.ctx ~interner:cache.it machine.Mac_machine.Machine.word in
      let blocks_checked = ref 0 in
      let blocks_skipped = ref 0 in
      let regions_skipped = ref 0 in
      let warnings = ref [] in
      let pair_o2n = Hashtbl.create 16 in
      let pair_n2o = Hashtbl.create 16 in
      let queue = Queue.create () in
      let enqueue ob nb = Queue.add (ob, nb) queue in
      enqueue (chase ocfg (Cfg.entry ocfg)) (chase ncfg (Cfg.entry ncfg));
      (* The skip ladder. A pair whose two blocks have equal generic
         transfers — same exit shape, same call events, same memory and
         the same term for every register the rest of the new program
         may still read (new-side live-out; dce's dead definitions are
         exactly the legitimate difference this ignores, mirroring the
         full check, which also compares along new-side liveness) — is
         equivalent under ANY entry environment, in particular under the
         seeded one the full check would build: generic-transfer
         equality is entry-symbol-for-entry-symbol substitutable. Such a
         pair is discharged without seeding or unit execution, and its
         successor pairs are enqueued, never assumed. Identical blocks
         hit the same [xfers] entry, so the common unchanged-block case
         costs one hash + one physical equality. *)
      let try_skip ob nb =
        let ox = xfer_of cache gctx ocfg.blocks.(ob)
        and nx = xfer_of cache gctx ncfg.blocks.(nb) in
        let structural = ox == nx in
        let pair_jump l =
          match (Cfg.block_of_label ocfg l, Cfg.block_of_label ncfg l) with
          | Some ot, Some nt -> Some (chase ocfg ot, chase ncfg nt)
          | _ -> None
        in
        let fall () =
          match
            ( chase ocfg (next_in_body ocfg ob),
              chase ncfg (next_in_body ncfg nb) )
          with
          | p -> Some p
          | exception Stuck _ -> None
        in
        let succs =
          match (ox.x_exit, nx.x_exit) with
          | TRet a, TRet b ->
            if
              match (a, b) with
              | None, None -> true
              | Some ta, Some tb -> Sx.equal ta tb
              | _ -> false
            then Some []
            else None
          | TJump l1, TJump l2 when String.equal l1 l2 ->
            Option.map (fun p -> [ p ]) (pair_jump l1)
          | TBranch (c1, t1), TBranch (c2, t2)
            when Sx.equal c1 c2 && String.equal t1 t2 -> (
            (* constant-folded conditions enqueue only the live edge,
               like run_unit does *)
            match c1 with
            | Sx.Con 0L -> Option.map (fun p -> [ p ]) (fall ())
            | Sx.Con _ -> Option.map (fun p -> [ p ]) (pair_jump t1)
            | _ -> (
              match (pair_jump t1, fall ()) with
              | Some p1, Some p2 -> Some [ p1; p2 ]
              | _ -> None))
          | TFall, TFall -> fall () |> Option.map (fun p -> [ p ])
          | _ -> None
        in
        match succs with
        | None -> None
        | Some ps ->
          let events_ok =
            structural
            ||
            let oe = List.rev ox.x_env.Sx.events
            and ne = List.rev nx.x_env.Sx.events in
            List.length oe = List.length ne
            && List.for_all2
                 (fun (o : Sx.event) (n : Sx.event) ->
                   String.equal o.Sx.ev_func n.Sx.ev_func
                   && List.length o.Sx.ev_args = List.length n.Sx.ev_args
                   && List.for_all2 Sx.equal o.Sx.ev_args n.Sx.ev_args)
                 oe ne
          in
          let state_ok =
            structural
            || Sx.equal_mem ox.x_env.Sx.mem nx.x_env.Sx.mem
               && Reg.Set.for_all
                    (fun r ->
                      Sx.equal (Sx.lookup ox.x_env r) (Sx.lookup nx.x_env r))
                    (Liveness.live_out (Lazy.force nsum.s_live) nb)
          in
          if events_ok && state_ok then Some ps else None
      in
      let mismatch where a b =
        let da, db = Sx.first_diff a b in
        err "%s of %s differ after %s: %a vs %a" where fname pass
          Sx.pp_term da Sx.pp_term db
      in
      let result = ref None in
      let fail e = if !result = None then result := Some e in
      while (not (Queue.is_empty queue)) && !result = None do
        let ob, nb = Queue.pop queue in
        match Hashtbl.find_opt pair_o2n ob with
        | Some nb' ->
          if nb' <> nb then
            fail
              (err "block pairing is not 1:1 (old block %d vs %d/%d)" ob nb'
                 nb)
        | None -> (
          (match Hashtbl.find_opt pair_n2o nb with
          | Some ob' when ob' <> ob ->
            fail
              (err "block pairing is not 1:1 (new block %d vs %d/%d)" nb ob'
                 ob)
          | _ -> ());
          if !result <> None then ()
          else begin
            Hashtbl.replace pair_o2n ob nb;
            Hashtbl.replace pair_n2o nb ob;
            let oblk = ocfg.blocks.(ob) in
            let region =
              match oblk.label with
              | Some l ->
                List.find_opt (fun (h, _) -> String.equal h l)
                  regions.headers
              | None -> None
            in
            match region with
            | Some (hdr, reason) -> (
              (* carve the transformed loop out: resume at its
                 continuation, justified by the pass's own certificate *)
              incr regions_skipped;
              let cont =
                match
                  List.filter (fun s -> s <> ob) ocfg.succ.(ob)
                with
                | [ oc ] -> Some (chase ocfg oc)
                | _ -> None
              in
              match cont with
              | None ->
                warnings :=
                  Diagnostic.warningf ~pass ~func:fname
                    "loop %s: no unique continuation; matching stopped \
                     at the region (%s)"
                    hdr reason
                  :: !warnings
              | Some oc -> (
                match find_continuation ocfg ncfg oc with
                | Some nc -> enqueue oc (chase ncfg nc)
                | None ->
                  warnings :=
                    Diagnostic.warningf ~pass ~func:fname
                      "loop %s: continuation anchor not found on the \
                       transformed side; matching stopped at the region \
                       (%s)"
                      hdr reason
                    :: !warnings))
            | None -> (
              match try_skip ob nb with
              | Some ps ->
                incr blocks_skipped;
                List.iter (fun (o, n) -> enqueue o n) ps
              | None -> (
              let st = Congruence.block_in (Lazy.force osum.s_cong) ob in
              let ctx =
                Sx.ctx ~interner:cache.it
                  ~cross_disjoint:
                    (congruence_oracle st facts.Disambig.aligns)
                  machine.Mac_machine.Machine.word
              in
              let env0 =
                seed_env ctx ~avail:(Lazy.force osum.s_avail).(ob)
                  ~cong_st:st ~regs:(Lazy.force reg_universe)
              in
              match
                ( run_unit ctx ocfg odeg ~stop:ostop env0 ob,
                  run_unit ctx ncfg ndeg ~stop:nstop env0 nb )
              with
              | exception Stuck msg ->
                fail (err "symbolic execution stuck: %s" msg)
              | (oenv, oexit), (nenv, nexit) -> (
                incr blocks_checked;
                (* call events must line up exactly *)
                let oev = List.rev oenv.Sx.events
                and nev = List.rev nenv.Sx.events in
                let rec check_events oe ne =
                  match (oe, ne) with
                  | [], [] -> None
                  | o :: os, n :: ns ->
                    if not (String.equal o.Sx.ev_func n.Sx.ev_func) then
                      Some
                        (err
                           "call sequences differ after %s: %s vs %s" pass
                           o.Sx.ev_func n.Sx.ev_func)
                    else if
                      List.length o.Sx.ev_args <> List.length n.Sx.ev_args
                    then
                      Some
                        (err "call %s: argument counts differ after %s"
                           o.Sx.ev_func pass)
                    else (
                      match
                        List.find_opt
                          (fun (a, b) -> not (Sx.equal a b))
                          (List.combine o.Sx.ev_args n.Sx.ev_args)
                      with
                      | Some (a, b) ->
                        Some
                          (mismatch
                             (Printf.sprintf "arguments of call %s"
                                o.Sx.ev_func)
                             a b)
                      | None -> check_events os ns)
                  | _ ->
                    Some
                      (err
                         "call counts differ after %s (%d vs %d events)"
                         pass (List.length oev) (List.length nev))
                in
                (match check_events oev nev with
                | Some e -> fail e
                | None -> ());
                (* memory must agree at the unit's exit *)
                (if !result = None
                 && not (Sx.equal_mem oenv.Sx.mem nenv.Sx.mem)
                then
                  match Sx.first_diff_mem oenv.Sx.mem nenv.Sx.mem with
                  | Either.Left (a, b) -> fail (mismatch "stored values" a b)
                  | Either.Right (m1, m2) ->
                    fail
                      (err
                         "memory states differ after %s: %a vs %a" pass
                         Sx.pp_mem m1 Sx.pp_mem m2));
                if !result = None then
                  (* live registers must agree along every matched edge *)
                  let check_edge osucc nsucc =
                    let live =
                      Liveness.live_in (Lazy.force nsum.s_live) nsucc
                    in
                    (match
                       Reg.Set.fold
                         (fun r acc ->
                           match acc with
                           | Some _ -> acc
                           | None ->
                             let a = Sx.lookup oenv r
                             and b = Sx.lookup nenv r in
                             if Sx.equal a b then None else Some (r, a, b))
                         live None
                     with
                    | Some (r, a, b) ->
                      fail
                        (mismatch
                           (Printf.sprintf "values of %s" (Reg.to_string r))
                           a b)
                    | None -> enqueue osucc nsucc)
                  in
                  match (oexit, nexit) with
                  | XRet a, XRet b -> (
                    match (a, b) with
                    | None, None -> ()
                    | Some ta, Some tb ->
                      if not (Sx.equal ta tb) then
                        fail (mismatch "return values" ta tb)
                    | _ ->
                      fail
                        (err "return arity differs after %s" pass))
                  | XJump ot, XJump nt -> check_edge ot nt
                  | XCond (oc, ota, ofa), XCond (nc, nta, nfa) ->
                    if Sx.equal oc nc then begin
                      check_edge ota nta;
                      if !result = None then check_edge ofa nfa
                    end
                    else if
                      match Sx.negate_cond ctx nc with
                      | Some nc' -> Sx.equal oc nc'
                      | None -> false
                    then begin
                      check_edge ota nfa;
                      if !result = None then check_edge ofa nta
                    end
                    else fail (mismatch "branch conditions" oc nc)
                  | _ ->
                    let shape = function
                      | XJump _ -> "jump"
                      | XCond _ -> "branch"
                      | XRet _ -> "return"
                    in
                    fail
                      (err
                         "control shapes differ after %s: old block %d \
                          ends in a %s, new block %d in a %s"
                         pass ob (shape oexit) nb (shape nexit)))))
          end)
      done;
      match !result with
      | Some (Error _ as e) -> e
      | Some (Ok _) | None ->
        Ok
          {
            blocks_checked = !blocks_checked;
            blocks_skipped = !blocks_skipped;
            regions_skipped = !regions_skipped;
            fallback = None;
            warnings = List.rev !warnings;
          }
    with e ->
      err "internal validator failure: %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)

type agg = {
  mutable runs : int;
  mutable blocks : int;
  mutable skipped : int;
  mutable regions : int;
  mutable fallbacks : int;
  mutable fallback_reason : string option;
  mutable seconds : float;
}

let agg_zero () =
  {
    runs = 0;
    blocks = 0;
    skipped = 0;
    regions = 0;
    fallbacks = 0;
    fallback_reason = None;
    seconds = 0.;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%d block pair(s) checked, %d skipped, %d region(s) carved%s"
    r.blocks_checked r.blocks_skipped r.regions_skipped
    (match r.fallback with
    | Some reason -> Printf.sprintf " [fallback: %s]" reason
    | None -> "")
