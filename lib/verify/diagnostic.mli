(** Structured diagnostics produced by Rtlcheck, the audits and the
    translation validator.

    A diagnostic names the pass whose output it describes, the function
    being checked (when known), optionally the uid of the offending
    instruction, and a severity. The pipeline fails fast on {!Error};
    {!Warning} marks constructs that are suspicious but not provably wrong
    (e.g. a register possibly used before definition on one path);
    {!Info} is commentary for [--verbose] runs.

    Every emitter renders through {!pp}, so provenance has one format:
    [\[severity\] pass(function): message (uid n)]. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  pass : string;  (** the pass whose output was being checked *)
  func : string option;  (** the function being checked, when known *)
  uid : int option;  (** offending instruction, when attributable *)
  message : string;
}

val error : pass:string -> ?func:string -> ?uid:int -> string -> t
val warning : pass:string -> ?func:string -> ?uid:int -> string -> t
val info : pass:string -> ?func:string -> ?uid:int -> string -> t

val errorf :
  pass:string ->
  ?func:string ->
  ?uid:int ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val warningf :
  pass:string ->
  ?func:string ->
  ?uid:int ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val with_func : string -> t -> t
(** Fill in the function name if the emitter did not know it (existing
    diagnostics keep theirs). *)

val severity_compare : severity -> severity -> int
(** Orders [Error] before [Warning] before [Info]. *)

val errors : t list -> t list
(** The error-severity subset, in order. *)

val has_errors : t list -> bool

val by_severity : t list -> t list
(** Stable sort, most severe first. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
