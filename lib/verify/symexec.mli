(** Symbolic evaluation of RTL into normalized value-graph terms.

    The translation validator ({!Tvalid}) executes a basic block (or a
    straight-line region) of both the input and the output of a pass under
    the {e same} symbolic entry environment and compares the resulting
    terms. Registers evaluate to terms over entry symbols; memory is a
    store/select chain resolved with an address-disambiguation oracle.

    Terms are kept in normal form by smart constructors — there is no
    separate normalization pass. The rules (constant folding, commutative
    ordering, select-over-store resolution, the legalizer's
    container/split shapes, the coalescer's extract shape) are documented
    in DESIGN.md §16. *)

open Mac_rtl

(** A symbolic unknown: a register's value at region entry, or the result
    of the [n]-th call event executed in the region. *)
type sym = SEntry of Reg.t | SCall of int

(** A memory unknown: the memory at region entry, or after the [n]-th
    call event. *)
type msym = MEntry | MCall of int

type term =
  | Sym of sym
  | Con of int64
  | Bin of Rtl.binop * term * term
  | Un of Rtl.unop * term
  | Ext of term * term * Width.t * Rtl.signedness
      (** [Ext (src, pos, w, s)]: {!Rtl.Extract} — bytes
          [pos mod 8 .. pos mod 8 + bytes w - 1] of [src], extended *)
  | Ins of term * term * term * Width.t
      (** [Ins (dst, src, pos, w)]: {!Rtl.Insert} *)
  | Read of mem * term * Width.t * Rtl.signedness
      (** a load of [w] bytes at the (effective) address term, extended *)

and mem = MSym of msym | MWrite of mem * term * Width.t * term
  (** [MWrite (m, addr, w, v)]: [m] with the low [bytes w] bytes of [v]
      stored at the effective address [addr] *)

val equal : term -> term -> bool
(** Structural equality with a physical-equality shortcut (terms form
    shared DAGs; the shortcut keeps comparison linear in practice). *)

val equal_mem : mem -> mem -> bool
val compare_term : term -> term -> int
(** A total order used for canonical operand/store ordering. *)

(** The evaluation context: the machine word gates the
    container-load/store rules (sound only where the legalizer emits
    them, i.e. on 64-bit-word machines whose aligned accesses trap on
    misalignment), and [cross_disjoint a wa b wb] is the caller's oracle
    for address pairs the syntactic base+offset test cannot split
    (byte ranges [a, a+wa) and [b, b+wb) never overlap). *)
type interner
(** Hash-consing state: every composite term/memory node built through
    the smart constructors below is interned here, so structurally equal
    values are physically equal and comparisons run on the value graph
    rather than the (potentially exponentially larger) tree it denotes.
    One interner per {!ctx}; both sides of a validation must share it. *)

type ctx = {
  word : Width.t;
  cross_disjoint : term -> int -> term -> int -> bool;
  it : interner;
}

val interner : unit -> interner
(** A fresh, empty arena. The validator's cross-pass cache allocates one
    per pipeline run and threads it through every {!ctx} it creates, so
    terms cached by an earlier validation stay physically comparable to
    terms built by a later one. *)

val ctx : ?interner:interner ->
  ?cross_disjoint:(term -> int -> term -> int -> bool) ->
  Width.t -> ctx
(** Default oracle: never disjoint. Allocates a fresh {!interner} unless
    one is supplied — contexts sharing an arena produce physically equal
    nodes for structurally equal values, across validations. *)

(** {1 Smart constructors} *)

val con : int64 -> term
val bin : ctx -> Rtl.binop -> term -> term -> term
val un : ctx -> Rtl.unop -> term -> term
val ext : ctx -> term -> term -> Width.t -> Rtl.signedness -> term
val ins : ctx -> term -> term -> term -> Width.t -> term
val read : ctx -> mem -> term -> Width.t -> Rtl.signedness -> term
val write : ctx -> mem -> term -> Width.t -> term -> mem

val negate_cond : ctx -> term -> term option
(** [Some t'] when the term is a comparison and [t'] is its logical
    negation (used to match branch edges crossed by a polarity flip). *)

val split_addr : term -> term * int64
(** Peel a canonical [base + constant] address apart. *)

val disjoint : ctx -> term -> int -> term -> int -> bool
(** Are the byte ranges [a, a+wa) and [b, b+wb) provably disjoint —
    same-base interval separation, else the context oracle. *)

(** {1 Execution} *)

type event = { ev_index : int; ev_func : string; ev_args : term list }
(** A call executed in the region, in order. Both sides of a validation
    must produce the same event sequence for equivalence to hold. *)

type env = {
  regs : term Reg.Map.t;
  mem : mem;
  events : event list;  (** reversed *)
  ncall : int;
}

val empty_env : env
val lookup : env -> Reg.t -> term
(** Defaults to [Sym (SEntry r)]: a register never written in the region
    still holds its entry value. *)

val operand : env -> Rtl.operand -> term

val exec_inst : ctx -> env -> Rtl.inst -> env
(** Labels, nops and terminators are identity; everything else updates
    the environment (calls append an event and havoc memory). *)

val exec_insts : ctx -> env -> Rtl.inst list -> env

(** {1 Reporting} *)

val pp_term : Format.formatter -> term -> unit
val pp_mem : Format.formatter -> mem -> unit

val first_diff : term -> term -> term * term
(** Descend through equal constructors to the smallest differing subterm
    pair — the minimized mismatch a diagnostic reports. *)

val first_diff_mem : mem -> mem -> (term * term, mem * mem) Either.t
val term_size : term -> int
