open Mac_rtl
module Cfg = Mac_cfg.Cfg
module Linform = Mac_opt.Linform
module Partition = Mac_core.Partition
module Coalesce = Mac_core.Coalesce
module Machine = Mac_machine.Machine
module I64Set = Set.Make (Int64)

module PairSet = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

let pass = "coalesce-audit"
let errorf ?uid fmt = Diagnostic.errorf ~pass ?uid fmt
let warningf ?uid fmt = Diagnostic.warningf ~pass ?uid fmt

let pp_terms ppf (terms : (Linform.sym * int64) list) =
  Linform.pp ppf { Linform.const = 0L; terms }

let terms_eq a b =
  Linform.same_terms { Linform.const = 0L; terms = a }
    { Linform.const = 0L; terms = b }

(* The loop body proper: the instructions of the block headed by [l],
   without the label and the bottom test/back-branch, in the shape
   {!Partition.analyze} expects. *)
let interior cfg l =
  match Cfg.block_of_label cfg l with
  | None -> None
  | Some i ->
    let b = cfg.Cfg.blocks.(i) in
    Some
      (List.filter
         (fun (inst : Rtl.inst) ->
           match inst.kind with
           | Rtl.Label _ -> false
           | k -> not (Rtl.is_terminator k))
         b.Cfg.insts)

(* --- wide-reference shapes ------------------------------------------ *)

(* An aligned load whose value is picked apart by [Extract]s before being
   redefined. Before legalization runs, [Extract] can only have been put
   there by the coalescing transformation. *)
type wide_load = {
  l_at : int;
  l_reg : Reg.t;
  l_width : Width.t;
  l_extracts : (int * Rtl.inst) list;  (** ascending body positions *)
}

let find_wide_loads (arr : Rtl.inst array) =
  let n = Array.length arr in
  let res = ref [] in
  for i = 0 to n - 1 do
    match arr.(i).kind with
    | Rtl.Load { dst; src; _ } when src.Rtl.aligned ->
      let extracts = ref [] in
      (try
         for j = i + 1 to n - 1 do
           (match arr.(j).kind with
           | Rtl.Extract { src = s; _ } when Reg.equal s dst ->
             extracts := (j, arr.(j)) :: !extracts
           | _ -> ());
           if List.exists (Reg.equal dst) (Rtl.defs arr.(j).kind) then
             raise Exit
         done
       with Exit -> ());
      if !extracts <> [] then
        res :=
          {
            l_at = i;
            l_reg = dst;
            l_width = src.Rtl.width;
            l_extracts = List.rev !extracts;
          }
          :: !res
    | _ -> ()
  done;
  List.rev !res

(* An aligned store of a buffer register assembled by [Insert]s. The scan
   walks backwards until the buffer's initialisation (its only non-Insert
   definition). *)
type wide_store = {
  s_at : int;
  s_reg : Reg.t;
  s_width : Width.t;
  s_inserts : (int * Rtl.inst) list;  (** ascending body positions *)
}

let find_wide_stores (arr : Rtl.inst array) =
  let res = ref [] in
  for i = Array.length arr - 1 downto 0 do
    match arr.(i).kind with
    | Rtl.Store { src = Rtl.Reg b; dst } when dst.Rtl.aligned ->
      let inserts = ref [] in
      (try
         for j = i - 1 downto 0 do
           match arr.(j).kind with
           | Rtl.Insert { dst = d; _ } when Reg.equal d b ->
             inserts := (j, arr.(j)) :: !inserts
           | k when List.exists (Reg.equal b) (Rtl.defs k) -> raise Exit
           | _ -> ()
         done
       with Exit -> ());
      if !inserts <> [] then
        res :=
          { s_at = i; s_reg = b; s_width = dst.Rtl.width; s_inserts = !inserts }
          :: !res
    | _ -> ()
  done;
  !res

(* --- memory events -------------------------------------------------- *)

(* Every byte-range the loop body touches, with two program points: where
   the original program touched it ([semantic] — for a group member, its
   extract/insert) and where the coalesced code touches memory
   ([effective] — the wide reference). The transformation is a reordering
   exactly when some load/store pair's two orders disagree. *)
type event = {
  part_id : int;
  grp : int option;  (** body index of the wide reference; [None] = narrow *)
  is_store : bool;
  lo : int64;  (** partition-relative byte interval [lo, hi) *)
  hi : int64;
  semantic : int;
  effective : int;
  e_uid : int;
}

let same_group a b =
  match (a.grp, b.grp) with Some x, Some y -> x = y | _ -> false

let flipped a b =
  compare a.semantic b.semantic * compare a.effective b.effective < 0

let overlap a b = Int64.compare a.lo b.hi < 0 && Int64.compare b.lo a.hi < 0

(* --- footprints ----------------------------------------------------- *)

let is_store_ref (r : Partition.ref_info) =
  match r.dir with Partition.Dstore _ -> true | Partition.Dload _ -> false

let bytes_of_refs ?(shift = 0L) refs pred =
  List.fold_left
    (fun acc (r : Partition.ref_info) ->
      if pred r then (
        let acc = ref acc in
        for k = 0 to Width.bytes r.mem.Rtl.width - 1 do
          acc :=
            I64Set.add
              (Int64.add
                 (Int64.add r.addr.Linform.const (Int64.of_int k))
                 shift)
              !acc
        done;
        !acc)
      else acc)
    I64Set.empty refs

(* --- dispatch-block guards ------------------------------------------ *)

(* The straight-line (fall-through) code preceding [Label main_l]: the
   unroller's dispatch block, including the alias checks' internal labels.
   Stops at the nearest instruction with no fall-through. *)
let dispatch_region (f : Func.t) main_l =
  let rec before acc = function
    | [] -> None
    | ({ Rtl.kind = Rtl.Label l; _ } : Rtl.inst) :: _ when l = main_l ->
      Some acc
    | i :: rest -> before (i :: acc) rest
  in
  match before [] f.body with
  | None -> None
  | Some rev_prefix ->
    let rec take acc = function
      | [] -> acc
      | (i : Rtl.inst) :: rest -> (
        match i.kind with
        | Rtl.Jump _ | Rtl.Ret _ -> acc
        | _ -> take (i :: acc) rest)
    in
    Some (take [] rev_prefix)

(* Symbolically execute the dispatch region. Collect every
   [t <- x & mask; if t <> 0 goto safe] pair as an alignment guard (the
   linear form of [x] at that point, over region-entry register values)
   and count the [Ltu -> safe] branches the alias checks end in. Returns
   the guards, the alias-branch count, and the environment at the region's
   end — i.e. at the main loop's entry, used to translate loop-body linear
   forms into region-entry space. *)
let dispatch_guards region safe_l =
  let env = ref (Linform.initial_env ()) in
  let ands = Hashtbl.create 8 in
  let aligns = ref [] in
  let alias = ref 0 in
  List.iter
    (fun (i : Rtl.inst) ->
      (match i.kind with
      | Rtl.Binop (Rtl.And, d, x, Rtl.Imm m)
      | Rtl.Binop (Rtl.And, d, Rtl.Imm m, x) ->
        Hashtbl.replace ands (Reg.id d) (Linform.eval_operand !env x, m)
      | Rtl.Branch { cmp = Rtl.Ne; l = Rtl.Reg t; r = Rtl.Imm 0L; target }
        when target = safe_l -> (
        match Hashtbl.find_opt ands (Reg.id t) with
        | Some g -> aligns := g :: !aligns
        | None -> ())
      | Rtl.Branch { cmp = Rtl.Ltu; target; _ } when target = safe_l ->
        incr alias
      | k -> List.iter (fun r -> Hashtbl.remove ands (Reg.id r)) (Rtl.defs k));
      env := Linform.step !env i.kind)
    region;
  (List.rev !aligns, !alias, !env)

let residue c wb =
  let r = Int64.rem c wb in
  if Int64.compare r 0L < 0 then Int64.add r wb else r

(* A loop-body linear form is over the loop block's entry registers; the
   dispatch guards were evaluated over the region's entry registers. The
   region falls through into the loop, so [env_end] bridges the two
   spaces. [None] when the form involves values the region cannot
   express. *)
let translate env_end (terms, const) =
  let opaque = ref false in
  let form =
    List.fold_left
      (fun acc (s, c) ->
        match s with
        | Linform.Entry r ->
          Linform.add acc (Linform.mul_const (Linform.eval_reg env_end r) c)
        | Linform.Opaque _ ->
          opaque := true;
          acc)
      (Linform.const const) terms
  in
  if !opaque then None else Some form

(* --- the per-loop audit --------------------------------------------- *)

let audit_coalesced ?analysis ~facts (f : Func.t) ~(machine : Machine.t)
    (r : Coalesce.loop_report) main_l safe_l =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let cfg =
    match analysis with
    | Some am -> Mac_dataflow.Analysis.cfg am
    | None -> Cfg.build f
  in
  (* Re-verify every elision certificate from the output RTL before
     anything else: a guard the coalescer discharged statically is only
     acceptable if this independent replay agrees. Verified certificates
     then stand in for the dynamic guards the coverage checks below would
     otherwise demand. *)
  let module Disambig = Mac_core.Disambig in
  let verified_aligns = ref [] and verified_aliases = ref [] in
  List.iter
    (fun (e : Disambig.elision) ->
      let res =
        match e.Disambig.cert with
        | Disambig.Align c ->
          Result.map
            (fun () -> verified_aligns := c :: !verified_aligns)
            (Disambig.verify_align ~facts ~cfg ~main_label:main_l c)
        | Disambig.Alias c ->
          Result.map
            (fun () -> verified_aliases := c :: !verified_aliases)
            (Disambig.verify_alias ~facts ~cfg ~main_label:main_l c)
      in
      match res with
      | Ok () -> ()
      | Error msg ->
        add
          (errorf "loop %s: elision certificate for %s rejected: %s"
             r.Coalesce.header e.Disambig.target msg))
    r.Coalesce.elisions;
  (match (interior cfg main_l, interior cfg safe_l) with
  | None, _ -> add (errorf "loop %s: main loop %s not found" r.header main_l)
  | _, None -> add (errorf "loop %s: safe loop %s not found" r.header safe_l)
  | Some main_insts, Some safe_insts ->
    let arr = Array.of_list main_insts in
    Array.iter
      (fun (i : Rtl.inst) ->
        match i.kind with
        | Rtl.Call _ | Rtl.Ret _ ->
          add
            (errorf ~uid:i.uid "loop %s: %s inside the coalesced loop body"
               r.header (Rtl.to_string i.kind))
        | _ -> ())
      arr;
    let analysis = Partition.analyze main_insts in
    let analysis_safe = Partition.analyze safe_insts in
    let refs = Hashtbl.create 32 in
    List.iter
      (fun (p : Partition.t) ->
        List.iter
          (fun (ri : Partition.ref_info) -> Hashtbl.replace refs ri.index (p, ri))
          p.Partition.refs)
      analysis.Partition.partitions;
    let wloads = find_wide_loads arr in
    let wstores = find_wide_stores arr in
    let events = ref [] in
    let aligns_required = ref [] in
    (* windows and extract/insert membership *)
    List.iter
      (fun wl ->
        match Hashtbl.find_opt refs wl.l_at with
        | None ->
          add
            (errorf ~uid:arr.(wl.l_at).uid
               "loop %s: wide load escaped the partition analysis" r.header)
        | Some (p, ri) ->
          let wb = Width.bytes wl.l_width in
          if not (Machine.legal_load machine wl.l_width ~aligned:true) then
            add
              (errorf ~uid:arr.(wl.l_at).uid
                 "loop %s: wide load of width %a is not legal on %s" r.header
                 Width.pp wl.l_width machine.Machine.name);
          if wb > 1 then
            aligns_required :=
              (p.Partition.terms, ri.addr.Linform.const, wb)
              :: !aligns_required;
          List.iter
            (fun (j, (inst : Rtl.inst)) ->
              match inst.kind with
              | Rtl.Extract { pos = Rtl.Imm pv; width; _ } ->
                let mb = Width.bytes width in
                if
                  Int64.compare pv 0L < 0
                  || Int64.compare (Int64.add pv (Int64.of_int mb))
                       (Int64.of_int wb)
                     > 0
                then
                  add
                    (errorf ~uid:inst.uid
                       "loop %s: extract at byte %Ld of width %a escapes its \
                        %a-wide load window"
                       r.header pv Width.pp width Width.pp wl.l_width);
                let lo = Int64.add ri.addr.Linform.const pv in
                events :=
                  {
                    part_id = p.Partition.id;
                    grp = Some wl.l_at;
                    is_store = false;
                    lo;
                    hi = Int64.add lo (Int64.of_int mb);
                    semantic = j;
                    effective = wl.l_at;
                    e_uid = inst.uid;
                  }
                  :: !events
              | _ ->
                add
                  (errorf ~uid:inst.uid
                     "loop %s: extract with a run-time byte position cannot \
                      be audited"
                     r.header))
            wl.l_extracts)
      wloads;
    List.iter
      (fun ws ->
        match Hashtbl.find_opt refs ws.s_at with
        | None ->
          add
            (errorf ~uid:arr.(ws.s_at).uid
               "loop %s: wide store escaped the partition analysis" r.header)
        | Some (p, ri) ->
          let wb = Width.bytes ws.s_width in
          if not (Machine.legal_store machine ws.s_width ~aligned:true) then
            add
              (errorf ~uid:arr.(ws.s_at).uid
                 "loop %s: wide store of width %a is not legal on %s" r.header
                 Width.pp ws.s_width machine.Machine.name);
          if wb > 1 then
            aligns_required :=
              (p.Partition.terms, ri.addr.Linform.const, wb)
              :: !aligns_required;
          let covered = Array.make wb false in
          List.iter
            (fun (j, (inst : Rtl.inst)) ->
              match inst.kind with
              | Rtl.Insert { pos = Rtl.Imm pv; width; _ } ->
                let mb = Width.bytes width in
                if
                  Int64.compare pv 0L < 0
                  || Int64.compare (Int64.add pv (Int64.of_int mb))
                       (Int64.of_int wb)
                     > 0
                then
                  add
                    (errorf ~uid:inst.uid
                       "loop %s: insert at byte %Ld of width %a escapes its \
                        %a-wide store window"
                       r.header pv Width.pp width Width.pp ws.s_width)
                else
                  for k = 0 to mb - 1 do
                    covered.(Int64.to_int pv + k) <- true
                  done;
                let lo = Int64.add ri.addr.Linform.const pv in
                events :=
                  {
                    part_id = p.Partition.id;
                    grp = Some ws.s_at;
                    is_store = true;
                    lo;
                    hi = Int64.add lo (Int64.of_int mb);
                    semantic = j;
                    effective = ws.s_at;
                    e_uid = inst.uid;
                  }
                  :: !events
              | _ ->
                add
                  (errorf ~uid:inst.uid
                     "loop %s: insert with a run-time byte position cannot be \
                      audited"
                     r.header))
            ws.s_inserts;
          Array.iteri
            (fun k ok ->
              if not ok then
                add
                  (errorf ~uid:arr.(ws.s_at).uid
                     "loop %s: wide store writes byte %d of its window that \
                      no member store supplied"
                     r.header k))
            covered)
      wstores;
    (* extracts/inserts that belong to no group read dead or foreign data *)
    let member_indices = Hashtbl.create 32 in
    List.iter
      (fun wl ->
        List.iter (fun (j, _) -> Hashtbl.replace member_indices j ()) wl.l_extracts)
      wloads;
    List.iter
      (fun ws ->
        List.iter (fun (j, _) -> Hashtbl.replace member_indices j ()) ws.s_inserts)
      wstores;
    Array.iteri
      (fun j (i : Rtl.inst) ->
        if not (Hashtbl.mem member_indices j) then
          match i.kind with
          | Rtl.Extract _ ->
            add
              (errorf ~uid:i.uid
                 "loop %s: extract does not read a live wide load (wide value \
                  clobbered or load missing)"
                 r.header)
          | Rtl.Insert _ ->
            add
              (errorf ~uid:i.uid
                 "loop %s: insert feeds no wide store (buffer clobbered or \
                  store missing)"
                 r.header)
          | _ -> ())
      arr;
    (* untouched narrow references *)
    let wide_indices = Hashtbl.create 8 in
    List.iter (fun wl -> Hashtbl.replace wide_indices wl.l_at ()) wloads;
    List.iter (fun ws -> Hashtbl.replace wide_indices ws.s_at ()) wstores;
    Hashtbl.iter
      (fun idx ((p : Partition.t), (ri : Partition.ref_info)) ->
        if not (Hashtbl.mem wide_indices idx) then
          events :=
            {
              part_id = p.Partition.id;
              grp = None;
              is_store = is_store_ref ri;
              lo = ri.addr.Linform.const;
              hi =
                Int64.add ri.addr.Linform.const
                  (Int64.of_int (Width.bytes ri.mem.Rtl.width));
              semantic = idx;
              effective = idx;
              e_uid = ri.inst.uid;
            }
            :: !events)
      refs;
    (* reorderings: same-partition overlaps are errors, cross-partition
       ones demand an alias guard *)
    let alias_required = ref PairSet.empty in
    let evs = Array.of_list !events in
    for a = 0 to Array.length evs - 1 do
      for b = a + 1 to Array.length evs - 1 do
        let ea = evs.(a) and eb = evs.(b) in
        if
          (ea.is_store || eb.is_store)
          && (not (same_group ea eb))
          && flipped ea eb
        then
          if ea.part_id = eb.part_id then (
            if overlap ea eb then
              add
                (errorf ~uid:ea.e_uid
                   "loop %s: coalescing reordered overlapping references \
                    (bytes %Ld..%Ld and %Ld..%Ld of the same partition)"
                   r.header ea.lo ea.hi eb.lo eb.hi))
          else
            alias_required :=
              PairSet.add
                (min ea.part_id eb.part_id, max ea.part_id eb.part_id)
                !alias_required
      done
    done;
    (* the report's group counts must match what is actually there *)
    let nl = List.length wloads and ns = List.length wstores in
    if nl < r.load_groups then
      add
        (errorf "loop %s: report claims %d load group(s) but only %d wide \
                 load(s) are present"
           r.header r.load_groups nl);
    if nl > r.load_groups then
      add
        (warningf
           "loop %s: %d wide load(s) present but the report claims %d"
           r.header nl r.load_groups);
    if ns < r.store_groups then
      add
        (errorf "loop %s: report claims %d store group(s) but only %d wide \
                 store(s) are present"
           r.header r.store_groups ns);
    if ns > r.store_groups then
      add
        (warningf
           "loop %s: %d wide store(s) present but the report claims %d"
           r.header ns r.store_groups);
    (* footprint equivalence against the safe loop *)
    let factor = Int64.of_int r.factor in
    List.iter
      (fun (ps : Partition.t) ->
        let pm =
          List.find_opt
            (fun (p : Partition.t) ->
              Linform.same_terms
                { Linform.const = 0L; terms = p.terms }
                { Linform.const = 0L; terms = ps.terms })
            analysis.Partition.partitions
        in
        match pm with
        | None ->
          if List.exists is_store_ref ps.refs then
            add
              (errorf
                 "loop %s: the stores of partition %a vanished from the \
                  coalesced loop"
                 r.header pp_terms ps.terms)
          else
            add
              (warningf
                 "loop %s: the loads of partition %a vanished from the \
                  coalesced loop"
                 r.header pp_terms ps.terms)
        | Some pm -> (
          match Partition.advance analysis_safe ps with
          | None -> ()
          | Some adv_s ->
            (match Partition.advance analysis pm with
            | Some adv_m when Int64.equal adv_m (Int64.mul factor adv_s) -> ()
            | Some adv_m ->
              add
                (errorf
                   "loop %s: partition %a advances %Ld bytes per coalesced \
                    iteration, expected %d * %Ld"
                   r.header pp_terms ps.terms adv_m r.factor adv_s)
            | None ->
              add
                (errorf
                   "loop %s: partition %a has no constant advance in the \
                    coalesced loop"
                   r.header pp_terms ps.terms));
            let unrolled pred =
              let one = bytes_of_refs ps.refs pred in
              let acc = ref I64Set.empty in
              for k = 0 to r.factor - 1 do
                acc :=
                  I64Set.union !acc
                    (I64Set.map
                       (fun o -> Int64.add o (Int64.mul (Int64.of_int k) adv_s))
                       one)
              done;
              !acc
            in
            let main_stores = bytes_of_refs pm.refs is_store_ref in
            let want_stores = unrolled is_store_ref in
            if not (I64Set.equal main_stores want_stores) then (
              let missing = I64Set.diff want_stores main_stores in
              let extra = I64Set.diff main_stores want_stores in
              let sample s =
                match I64Set.min_elt_opt s with
                | Some o -> Int64.to_string o
                | None -> "-"
              in
              add
                (errorf
                   "loop %s: partition %a store footprint differs from %d \
                    safe iterations (%d byte(s) missing, first %s; %d \
                    extra, first %s)"
                   r.header pp_terms ps.terms r.factor
                   (I64Set.cardinal missing) (sample missing)
                   (I64Set.cardinal extra) (sample extra)));
            let main_loads =
              bytes_of_refs pm.refs (fun ri -> not (is_store_ref ri))
            in
            let want_loads = unrolled (fun ri -> not (is_store_ref ri)) in
            (match (I64Set.min_elt_opt want_loads, I64Set.max_elt_opt want_loads)
            with
            | Some lo, Some hi ->
              let slack = Int64.of_int (Width.bytes machine.Machine.word - 1) in
              let lo = Int64.sub lo slack and hi = Int64.add hi slack in
              I64Set.iter
                (fun o ->
                  if Int64.compare o lo < 0 || Int64.compare o hi > 0 then
                    add
                      (errorf
                         "loop %s: coalesced loop reads byte %Ld of \
                          partition %a, outside the envelope [%Ld, %Ld] of \
                          %d safe iterations"
                         r.header o pp_terms ps.terms lo hi r.factor))
                main_loads
            | _ ->
              if not (I64Set.is_empty main_loads) then
                add
                  (errorf
                     "loop %s: coalesced loop reads partition %a that %d \
                      safe iterations never read"
                     r.header pp_terms ps.terms r.factor))))
      analysis_safe.Partition.partitions;
    (* the run-time guards in the dispatch block *)
    match dispatch_region f main_l with
    | None -> add (errorf "loop %s: no dispatch code precedes the main loop" r.header)
    | Some region ->
      let guards, alias_found, env_end = dispatch_guards region safe_l in
      let required =
        (* one guard per (partition, window residue, width) class *)
        List.sort_uniq Stdlib.compare
          (List.map
             (fun (terms, c, wb) -> (terms, residue c (Int64.of_int wb), wb))
             !aligns_required)
      in
      List.iter
        (fun (terms, res, wb) ->
          let wbL = Int64.of_int wb in
          (* a class is covered either by a dynamic guard in the dispatch
             code or by a certificate this audit just re-verified *)
          let certified =
            List.exists
              (fun (c : Disambig.align_cert) ->
                terms_eq c.Disambig.ac_terms terms
                && c.Disambig.ac_wide = wb
                && Int64.equal (residue c.Disambig.ac_window wbL) res)
              !verified_aligns
          in
          if not certified then
            match translate env_end (terms, res) with
            | None ->
              add
                (warningf
                   "loop %s: alignment of the %d-byte window of partition %a \
                    cannot be audited (opaque base)"
                   r.header wb pp_terms terms)
            | Some want ->
              let matched =
                List.exists
                  (fun ((g : Linform.t), mask) ->
                    Int64.equal mask (Int64.sub wbL 1L)
                    && Linform.same_terms g want
                    && Int64.equal (residue g.Linform.const wbL)
                         (residue want.Linform.const wbL))
                  guards
              in
              if not matched then
                add
                  (errorf
                     "loop %s: no alignment guard dispatches the %d-byte \
                      window of partition %a to the safe loop"
                     r.header wb pp_terms terms))
        required;
      let terms_of_part id =
        List.find_map
          (fun (p : Partition.t) ->
            if p.Partition.id = id then Some p.Partition.terms else None)
          analysis.Partition.partitions
      in
      let pair_certified (i, j) =
        match (terms_of_part i, terms_of_part j) with
        | Some ti, Some tj ->
          List.exists
            (fun (c : Disambig.alias_cert) ->
              (terms_eq c.Disambig.ca.Disambig.s_terms ti
              && terms_eq c.Disambig.cb.Disambig.s_terms tj)
              || (terms_eq c.Disambig.ca.Disambig.s_terms tj
                 && terms_eq c.Disambig.cb.Disambig.s_terms ti))
            !verified_aliases
        | _ -> false
      in
      let need =
        PairSet.cardinal
          (PairSet.filter (fun p -> not (pair_certified p)) !alias_required)
      in
      if alias_found < need then
        add
          (errorf
             "loop %s: %d cross-partition reordering(s) need an alias guard \
              but only %d alias branch(es) reach the safe loop"
             r.header need alias_found));
  List.rev !diags

let audit_loop ?analysis ~facts f ~machine (r : Coalesce.loop_report) =
  match r.Coalesce.status with
  | Coalesce.Coalesced -> (
    match (r.main_label, r.safe_label) with
    | Some main_l, Some safe_l ->
      audit_coalesced ?analysis ~facts f ~machine r main_l safe_l
    | _ ->
      [
        Diagnostic.errorf ~pass
          "loop %s: coalesced report carries no main/safe loop labels"
          r.header;
      ])
  | _ -> []

let run ?analysis ?(facts = Mac_core.Disambig.empty) f ~machine ~reports =
  List.concat_map (audit_loop ?analysis ~facts f ~machine) reports
  |> List.map (Diagnostic.with_func f.Func.name)
