open Mac_rtl
module Sched = Mac_opt.Sched
module Ps = Mac_opt.Pipeline_sched
module Machine = Mac_machine.Machine

let pass = "pipeline-sched-audit"

(* Re-verify one schedule certificate against a freshly rebuilt
   dependence graph. The scheduler's own solver is not trusted: the
   audit re-derives the loop-carried register set and the edge list from
   the recorded body via {!Pipeline_sched.edges} (which itself rebuilds
   {!Sched.build_dag} from scratch) and checks the recorded times
   against every constraint, the issue-slot resource table, the stage-0
   pinning of loop-carried definitions and the MII bounds — then checks
   that the kernel in the {e output} RTL really is the claimed
   reschedule: [stages] copies of the original body (one per overlapped
   iteration), identical instruction by instruction once register names
   are erased. *)
let check_cert (m : Machine.t) (f : Func.t) (r : Ps.report) (c : Ps.cert) =
  let diags = ref [] in
  let err fmt = Format.kasprintf (fun s -> diags := Diagnostic.error ~pass s :: !diags) fmt in
  let arr = Array.of_list c.Ps.c_body in
  let n = Array.length arr in
  let ii = c.Ps.c_ii in
  if Array.length c.Ps.c_times <> n then
    err "loop %s: %d schedule times for %d instructions" r.Ps.header
      (Array.length c.Ps.c_times) n
  else if ii < 1 then err "loop %s: II %d < 1" r.Ps.header ii
  else begin
    let t = c.Ps.c_times in
    (* independently re-derived loop-carried set must match the recorded
       one — a disagreement means the renaming partition is unsound *)
    let shared =
      Ps.loop_shared ~body:c.Ps.c_body ~branch_uses:c.Ps.c_branch_uses
    in
    if not (Reg.Set.equal shared c.Ps.c_shared) then
      err "loop %s: recorded loop-carried set differs from re-derivation"
        r.Ps.header;
    (* every dependence edge holds: t(dst) >= t(src) + lat - dist*II *)
    let es, _ = Ps.edges m ~shared arr in
    List.iter
      (fun (e : Ps.edge) ->
        if t.(e.dst) < t.(e.src) + e.lat - (e.dist * ii) then
          err
            "loop %s: edge %d->%d (lat %d, dist %d) violated at II %d: t=%d \
             vs t=%d"
            r.Ps.header e.src e.dst e.lat e.dist ii t.(e.src) t.(e.dst))
      es;
    (* issue slots are exclusive modulo II *)
    let owner = Array.make ii (-1) in
    Array.iteri
      (fun o (inst : Rtl.inst) ->
        for k = 0 to Sched.issue_cost m inst.kind - 1 do
          let s = (t.(o) + k) mod ii in
          if owner.(s) >= 0 then
            err "loop %s: issue slot %d claimed by ops %d and %d" r.Ps.header
              s owner.(s) o
          else owner.(s) <- o
        done)
      arr;
    (* definitions the back branch reads stay in stage 0, so the kernel
       block's once-per-u-iterations exit test sees an exact iteration
       boundary; other loop-carried registers are free to float (the
       distance-1 cross edges order their instances) *)
    let pinned =
      List.fold_left
        (fun acc rg ->
          if Reg.Set.mem rg shared then Reg.Set.add rg acc else acc)
        Reg.Set.empty c.Ps.c_branch_uses
    in
    Array.iteri
      (fun o (inst : Rtl.inst) ->
        if
          List.exists (fun rg -> Reg.Set.mem rg pinned) (Rtl.defs inst.kind)
          && t.(o) >= ii
        then
          err "loop %s: op %d defines a branch-read register in stage %d"
            r.Ps.header o (t.(o) / ii))
      arr;
    (* achieved II respects the recomputed resource bound and never
       exceeds the list schedule's steady state *)
    let res =
      Stdlib.max 1
        (Array.fold_left
           (fun acc (i : Rtl.inst) -> acc + Sched.issue_cost m i.kind)
           0 arr)
    in
    if ii < res then
      err "loop %s: II %d below resource bound %d" r.Ps.header ii res;
    let list_ii = Sched.block_cycles m c.Ps.c_body in
    if ii > list_ii then
      err "loop %s: II %d worse than list schedule %d" r.Ps.header ii list_ii;
    let stages =
      1 + Array.fold_left (fun acc x -> Stdlib.max acc (x / ii)) 0 t
    in
    if stages <> c.Ps.c_stages then
      err "loop %s: recorded %d stages, times imply %d" r.Ps.header
        c.Ps.c_stages stages;
    (* the kernel in the output RTL: [stages] register-erased copies of
       the body ([1] for an in-place reorder), then the back branch *)
    let erase kind = Rtl.map_regs (fun _ -> Reg.make 0) kind in
    let rec kernel_of = function
      | [] -> None
      | ({ Rtl.kind = Rtl.Label l; _ } : Rtl.inst) :: rest
        when String.equal l c.Ps.c_kernel ->
        let rec take acc = function
          | [] -> List.rev acc
          | ({ Rtl.kind; _ } : Rtl.inst) :: _ when Sched.is_barrier kind ->
            List.rev acc
          | i :: rest -> take (i :: acc) rest
        in
        Some (take [] rest)
      | _ :: rest -> kernel_of rest
    in
    match kernel_of f.Func.body with
    | None -> err "loop %s: kernel label %s not found" r.Ps.header c.Ps.c_kernel
    | Some kinsts ->
      let copies = match r.Ps.status with Ps.Pipelined -> stages | _ -> 1 in
      if List.length kinsts <> copies * n then
        err "loop %s: kernel holds %d instructions, expected %d x %d"
          r.Ps.header (List.length kinsts) copies n
      else begin
        let tally insts =
          let tbl = Hashtbl.create 16 in
          List.iter
            (fun (i : Rtl.inst) ->
              let k = erase i.kind in
              Hashtbl.replace tbl k
                (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
            insts;
          tbl
        in
        let want = tally c.Ps.c_body and got = tally kinsts in
        Hashtbl.iter
          (fun k cnt ->
            let have = Option.value (Hashtbl.find_opt got k) ~default:0 in
            if have <> copies * cnt then
              err
                "loop %s: kernel carries %d instance(s) of a body shape, \
                 expected %d"
                r.Ps.header have (copies * cnt))
          want
      end
  end;
  List.rev !diags

let run (f : Func.t) ~machine
    ~(sched_reports : (Ps.report * Ps.cert option) list) =
  List.concat_map
    (fun ((r : Ps.report), cert) ->
      match (r.Ps.status, cert) with
      | Ps.Rejected _, _ | _, None -> []
      | (Ps.Pipelined | Ps.Reordered), Some c -> check_cert machine f r c)
    sched_reports
  |> List.map (Diagnostic.with_func f.Func.name)
