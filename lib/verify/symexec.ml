open Mac_rtl

type sym = SEntry of Reg.t | SCall of int
type msym = MEntry | MCall of int

type term =
  | Sym of sym
  | Con of int64
  | Bin of Rtl.binop * term * term
  | Un of Rtl.unop * term
  | Ext of term * term * Width.t * Rtl.signedness
  | Ins of term * term * term * Width.t
  | Read of mem * term * Width.t * Rtl.signedness

and mem = MSym of msym | MWrite of mem * term * Width.t * term

(* --- hash-consing ---------------------------------------------------
   Terms are value graphs: a register used twice makes its term a child
   of two parents, and a store chain resolved through select-over-store
   feeds whole stored values back into later values. The tree a term
   denotes therefore grows exponentially in the block length even though
   the graph stays linear — and the old and new sides of a validation
   build their graphs independently, so physical sharing alone cannot
   make their comparison cheap. Every composite node is interned in a
   table owned by the validation's ctx (both sides share it): maximal
   sharing within and across the two executions, structural equality of
   interned nodes collapses to pointer equality, and every traversal
   (equality, ordering, sizing) runs on the graph, not the tree. *)

module TermTbl = Hashtbl.Make (struct
  type t = term

  let equal = ( == )

  (* [Hashtbl.hash] caps the number of nodes it visits, so hashing a
     physically huge graph is O(1); physically equal keys trivially agree *)
  let hash = Hashtbl.hash
end)

module MemTbl = Hashtbl.Make (struct
  type t = mem

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type interner = {
  mutable next_id : int;
  term_ids : int TermTbl.t;  (** interned node -> unique id *)
  mem_ids : int MemTbl.t;
  term_nodes : (int, term list ref) Hashtbl.t;  (** shallow hash buckets *)
  mem_nodes : (int, mem list ref) Hashtbl.t;
}

let interner () =
  {
    next_id = 0;
    term_ids = TermTbl.create 1024;
    mem_ids = MemTbl.create 256;
    term_nodes = Hashtbl.create 1024;
    mem_nodes = Hashtbl.create 256;
  }

let mix h x = (h * 0x01000193) lxor (x land max_int)

(* children are guaranteed interned when these run *)
let shallow_term_hash it = function
  | Sym s -> mix 1 (Hashtbl.hash s)
  | Con c -> mix 2 (Hashtbl.hash c)
  | Bin (o, a, b) ->
    mix
      (mix (mix 3 (Hashtbl.hash o)) (TermTbl.find it.term_ids a))
      (TermTbl.find it.term_ids b)
  | Un (o, a) ->
    mix (mix 4 (Hashtbl.hash o)) (TermTbl.find it.term_ids a)
  | Ext (s, p, w, g) ->
    mix
      (mix
         (mix (mix 5 (TermTbl.find it.term_ids s))
            (TermTbl.find it.term_ids p))
         (Hashtbl.hash w))
      (Hashtbl.hash g)
  | Ins (d, s, p, w) ->
    mix
      (mix
         (mix (mix 6 (TermTbl.find it.term_ids d))
            (TermTbl.find it.term_ids s))
         (TermTbl.find it.term_ids p))
      (Hashtbl.hash w)
  | Read (m, a, w, g) ->
    mix
      (mix
         (mix (mix 7 (MemTbl.find it.mem_ids m))
            (TermTbl.find it.term_ids a))
         (Hashtbl.hash w))
      (Hashtbl.hash g)

let shallow_mem_hash it = function
  | MSym s -> mix 8 (Hashtbl.hash s)
  | MWrite (m, a, w, v) ->
    mix
      (mix
         (mix (mix 9 (MemTbl.find it.mem_ids m))
            (TermTbl.find it.term_ids a))
         (Hashtbl.hash w))
      (TermTbl.find it.term_ids v)

let shallow_term_equal a b =
  match (a, b) with
  | Sym x, Sym y -> x = y
  | Con x, Con y -> Int64.equal x y
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
  | Un (o1, a1), Un (o2, a2) -> o1 = o2 && a1 == a2
  | Ext (s1, p1, w1, g1), Ext (s2, p2, w2, g2) ->
    s1 == s2 && p1 == p2 && Width.equal w1 w2 && g1 = g2
  | Ins (d1, s1, p1, w1), Ins (d2, s2, p2, w2) ->
    d1 == d2 && s1 == s2 && p1 == p2 && Width.equal w1 w2
  | Read (m1, a1, w1, g1), Read (m2, a2, w2, g2) ->
    m1 == m2 && a1 == a2 && Width.equal w1 w2 && g1 = g2
  | _ -> false

let shallow_mem_equal a b =
  match (a, b) with
  | MSym x, MSym y -> x = y
  | MWrite (m1, a1, w1, v1), MWrite (m2, a2, w2, v2) ->
    m1 == m2 && a1 == a2 && v1 == v2 && Width.equal w1 w2
  | _ -> false

let bucket tbl h =
  match Hashtbl.find_opt tbl h with
  | Some b -> b
  | None ->
    let b = ref [] in
    Hashtbl.add tbl h b;
    b

(* Full hash-consing: structurally equal inputs map to one physical
   node, whatever mix of raw and interned parts they arrive with.
   Recursion stops at already-interned nodes, so interning a shallow
   wrapper around interned children is O(1). *)
let rec intern it t =
  if TermTbl.mem it.term_ids t then t
  else
    let t =
      match t with
      | Sym _ | Con _ -> t
      | Bin (o, a, b) ->
        let a' = intern it a and b' = intern it b in
        if a' == a && b' == b then t else Bin (o, a', b')
      | Un (o, a) ->
        let a' = intern it a in
        if a' == a then t else Un (o, a')
      | Ext (s, p, w, g) ->
        let s' = intern it s and p' = intern it p in
        if s' == s && p' == p then t else Ext (s', p', w, g)
      | Ins (d, s, p, w) ->
        let d' = intern it d and s' = intern it s and p' = intern it p in
        if d' == d && s' == s && p' == p then t else Ins (d', s', p', w)
      | Read (m, a, w, g) ->
        let m' = intern_mem it m and a' = intern it a in
        if m' == m && a' == a then t else Read (m', a', w, g)
    in
    let b = bucket it.term_nodes (shallow_term_hash it t) in
    match List.find_opt (shallow_term_equal t) !b with
    | Some u -> u
    | None ->
      TermTbl.add it.term_ids t it.next_id;
      it.next_id <- it.next_id + 1;
      b := t :: !b;
      t

and intern_mem it m =
  if MemTbl.mem it.mem_ids m then m
  else
    let m =
      match m with
      | MSym _ -> m
      | MWrite (n, a, w, v) ->
        let n' = intern_mem it n and a' = intern it a and v' = intern it v in
        if n' == n && a' == a && v' == v then m else MWrite (n', a', w, v')
    in
    let b = bucket it.mem_nodes (shallow_mem_hash it m) in
    match List.find_opt (shallow_mem_equal m) !b with
    | Some u -> u
    | None ->
      MemTbl.add it.mem_ids m it.next_id;
      it.next_id <- it.next_id + 1;
      b := m :: !b;
      m

(* Terms are shared DAGs (an env rebinds subterms without copying), so
   plain structural equality can revisit the same subterm exponentially
   often; the physical shortcut makes the common all-shared case O(1).
   Interned nodes compare in O(1) by construction; the structural
   fallback only ever descends into raw leaves. *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Sym x, Sym y -> x = y
  | Con x, Con y -> Int64.equal x y
  | Bin (o1, a1, b1), Bin (o2, a2, b2) ->
    o1 = o2 && equal a1 a2 && equal b1 b2
  | Un (o1, a1), Un (o2, a2) -> o1 = o2 && equal a1 a2
  | Ext (s1, p1, w1, g1), Ext (s2, p2, w2, g2) ->
    Width.equal w1 w2 && g1 = g2 && equal s1 s2 && equal p1 p2
  | Ins (d1, s1, p1, w1), Ins (d2, s2, p2, w2) ->
    Width.equal w1 w2 && equal d1 d2 && equal s1 s2 && equal p1 p2
  | Read (m1, a1, w1, g1), Read (m2, a2, w2, g2) ->
    Width.equal w1 w2 && g1 = g2 && equal a1 a2 && equal_mem m1 m2
  | _ -> false

and equal_mem m1 m2 =
  m1 == m2
  ||
  match (m1, m2) with
  | MSym x, MSym y -> x = y
  | MWrite (n1, a1, w1, v1), MWrite (n2, a2, w2, v2) ->
    Width.equal w1 w2 && equal a1 a2 && equal v1 v2 && equal_mem n1 n2
  | _ -> false

(* A total order for canonicalization (commutative operands, adjacent
   disjoint stores). Any deterministic order works; this one is cheap. *)
let ctor_rank = function
  | Con _ -> 0
  | Sym _ -> 1
  | Un _ -> 2
  | Bin _ -> 3
  | Ext _ -> 4
  | Ins _ -> 5
  | Read _ -> 6

let rec compare_term a b =
  if a == b then 0
  else
    match (a, b) with
    | Con x, Con y -> Int64.compare x y
    | Sym x, Sym y -> Stdlib.compare x y
    | Un (o1, a1), Un (o2, a2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c else compare_term a1 a2
    | Bin (o1, a1, b1), Bin (o2, a2, b2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c
      else
        let c = compare_term a1 a2 in
        if c <> 0 then c else compare_term b1 b2
    | Ext (s1, p1, w1, g1), Ext (s2, p2, w2, g2) ->
      let c = Stdlib.compare (w1, g1) (w2, g2) in
      if c <> 0 then c
      else
        let c = compare_term s1 s2 in
        if c <> 0 then c else compare_term p1 p2
    | Ins (d1, s1, p1, w1), Ins (d2, s2, p2, w2) ->
      let c = Width.compare w1 w2 in
      if c <> 0 then c
      else
        let c = compare_term d1 d2 in
        if c <> 0 then c
        else
          let c = compare_term s1 s2 in
          if c <> 0 then c else compare_term p1 p2
    | Read (m1, a1, w1, g1), Read (m2, a2, w2, g2) ->
      let c = Stdlib.compare (w1, g1) (w2, g2) in
      if c <> 0 then c
      else
        let c = compare_term a1 a2 in
        if c <> 0 then c else compare_mem m1 m2
    | x, y -> Stdlib.compare (ctor_rank x) (ctor_rank y)

and compare_mem m1 m2 =
  if m1 == m2 then 0
  else
    match (m1, m2) with
    | MSym x, MSym y -> Stdlib.compare x y
    | MSym _, MWrite _ -> -1
    | MWrite _, MSym _ -> 1
    | MWrite (n1, a1, w1, v1), MWrite (n2, a2, w2, v2) ->
      let c = compare_term a1 a2 in
      if c <> 0 then c
      else
        let c = Width.compare w1 w2 in
        if c <> 0 then c
        else
          let c = compare_term v1 v2 in
          if c <> 0 then c else compare_mem n1 n2

type ctx = {
  word : Width.t;
  cross_disjoint : term -> int -> term -> int -> bool;
  it : interner;
}

let ctx ?interner:it ?(cross_disjoint = fun _ _ _ _ -> false) word =
  let it = match it with Some it -> it | None -> interner () in
  { word; cross_disjoint; it }

let con c = Con c

(* --- address arithmetic --------------------------------------------- *)

let split_addr = function
  | Bin (Rtl.Add, base, Con k) -> (base, k)
  | t -> (t, 0L)

(* Byte ranges [a, a+wa) and [b, b+wb): provably disjoint when the
   addresses share a base term and the constant intervals separate
   (64-bit wrap-around cannot rejoin them for the small widths involved),
   else when the caller's oracle says so. *)
let disjoint ctx a wa b wb =
  let ba, ka = split_addr a and bb, kb = split_addr b in
  if equal ba bb then
    let ka = Int64.to_int (Int64.sub ka kb) in
    (* offsets now relative: [ka, ka+wa) vs [0, wb) *)
    ka >= wb || ka + wa <= 0
  else ctx.cross_disjoint a wa b wb

(* ranges: same base and [ka, ka+wa) covers / is covered by [kb, kb+wb) *)
let covers a wa b wb =
  let ba, ka = split_addr a and bb, kb = split_addr b in
  equal ba bb
  && Int64.compare ka kb <= 0
  && Int64.to_int (Int64.sub kb ka) + wb <= wa

(* --- smart constructors --------------------------------------------- *)

let negate_cmp = function
  | Rtl.Eq -> Rtl.Ne
  | Rtl.Ne -> Rtl.Eq
  | Rtl.Lt -> Rtl.Ge
  | Rtl.Ge -> Rtl.Lt
  | Rtl.Le -> Rtl.Gt
  | Rtl.Gt -> Rtl.Le
  | Rtl.Ltu -> Rtl.Geu
  | Rtl.Geu -> Rtl.Ltu
  | Rtl.Leu -> Rtl.Gtu
  | Rtl.Gtu -> Rtl.Leu

let is_commutative = function
  | Rtl.Add | Rtl.Mul | Rtl.And | Rtl.Or | Rtl.Xor | Rtl.Cmp Rtl.Eq
  | Rtl.Cmp Rtl.Ne ->
    true
  | _ -> false

(* a comparison on the same operands: Eq/Le/Ge (and unsigned) hold *)
let cmp_refl = function
  | Rtl.Eq | Rtl.Le | Rtl.Ge | Rtl.Leu | Rtl.Geu -> true
  | Rtl.Ne | Rtl.Lt | Rtl.Gt | Rtl.Ltu | Rtl.Gtu -> false

let rec bin ctx op a b =
  match (op, a, b) with
  | _, Con x, Con y -> (
    (* Div/Rem by zero traps at run time; leave the term stuck. *)
    match Rtl.eval_binop op x y with
    | v -> Con v
    | exception Rtl.Division_by_zero -> Bin (op, a, b))
  (* commutative: constant to the right, otherwise canonical order *)
  | _, Con _, _ when is_commutative op -> bin ctx op b a
  | _, _, _ when is_commutative op && compare_term a b > 0 && not (is_con b)
    ->
    bin ctx op b a
  | Rtl.Sub, _, Con c when c <> Int64.min_int ->
    bin ctx Rtl.Add a (Con (Int64.neg c))
  | Rtl.Sub, _, _ when equal a b -> Con 0L
  | Rtl.Add, _, Con 0L -> a
  (* reassociate additions so every address is [base + Con k] *)
  | Rtl.Add, Bin (Rtl.Add, x, Con k1), Con k2 ->
    bin ctx Rtl.Add x (Con (Int64.add k1 k2))
  | Rtl.Add, Bin (Rtl.Add, x, Con k), y | Rtl.Add, y, Bin (Rtl.Add, x, Con k)
    ->
    bin ctx Rtl.Add (bin ctx Rtl.Add x y) (Con k)
  | Rtl.Mul, _, Con 1L -> a
  | Rtl.Mul, _, Con 0L -> Con 0L
  | Rtl.Mul, _, Con c when Width.log2_exact c <> None ->
    (* the simplifier's strength rewrite; keep both sides convergent *)
    let n = Option.get (Width.log2_exact c) in
    bin ctx Rtl.Shl a (Con (Int64.of_int n))
  | Rtl.And, _, Con -1L -> a
  | Rtl.And, _, Con 0L -> Con 0L
  | Rtl.And, _, _ when equal a b -> a
  | Rtl.Or, _, Con 0L -> a
  | Rtl.Or, _, _ when equal a b -> a
  | Rtl.Xor, _, Con 0L -> a
  | Rtl.Xor, _, _ when equal a b -> Con 0L
  | (Rtl.Shl | Rtl.Lshr | Rtl.Ashr), _, Con 0L -> a
  (* the legalizer's split-load: lo | (hi << 32) over adjacent words *)
  | Rtl.Or, Read (m1, a1, Width.W32, Rtl.Unsigned),
      Bin (Rtl.Shl, Read (m2, a2, Width.W32, _), Con 32L)
  | Rtl.Or, Bin (Rtl.Shl, Read (m2, a2, Width.W32, _), Con 32L),
      Read (m1, a1, Width.W32, Rtl.Unsigned)
    when equal_mem m1 m2 && equal a2 (bin ctx Rtl.Add a1 (Con 4L)) ->
    Read (m1, a1, Width.W64, Rtl.Unsigned)
  | Rtl.Cmp c, _, _ when equal a b -> Con (if cmp_refl c then 1L else 0L)
  (* canonical comparison set: {Eq, Ne, Lt, Le, Ltu, Leu} via mirroring *)
  | Rtl.Cmp Rtl.Gt, _, _ -> bin ctx (Rtl.Cmp Rtl.Lt) b a
  | Rtl.Cmp Rtl.Ge, _, _ -> bin ctx (Rtl.Cmp Rtl.Le) b a
  | Rtl.Cmp Rtl.Gtu, _, _ -> bin ctx (Rtl.Cmp Rtl.Ltu) b a
  | Rtl.Cmp Rtl.Geu, _, _ -> bin ctx (Rtl.Cmp Rtl.Leu) b a
  | _ -> Bin (op, a, b)

and is_con = function Con _ -> true | _ -> false

let negate_cond ctx = function
  | Bin (Rtl.Cmp c, l, r) ->
    Some (intern ctx.it (Bin (Rtl.Cmp (negate_cmp c), l, r)))
  | Con 0L -> Some (Con 1L)
  | Con _ -> Some (Con 0L)
  | _ -> None

(* does the term's value provably fit (already extended) in width [w]? *)
let fits w sign t =
  match (t, sign) with
  | Read (_, _, w', Rtl.Unsigned), Rtl.Unsigned
  | Ext (_, _, w', Rtl.Unsigned), Rtl.Unsigned ->
    Width.compare w' w <= 0
  | Read (_, _, w', Rtl.Signed), Rtl.Signed
  | Ext (_, _, w', Rtl.Signed), Rtl.Signed ->
    Width.compare w' w <= 0
  | Bin (Rtl.Cmp _, _, _), _ -> true  (* 0 or 1 fits any width, any sign *)
  | Un (Rtl.Zext w', _), Rtl.Unsigned -> Width.compare w' w <= 0
  | Un (Rtl.Sext w', _), Rtl.Signed -> Width.compare w' w <= 0
  | Un (Rtl.Zext w', _), Rtl.Signed -> Width.compare w' w < 0
  | _ -> false

let rec un ctx op t =
  match (op, t) with
  | _, Con x -> Con (Rtl.eval_unop op x)
  | Rtl.Neg, Un (Rtl.Neg, x) -> x
  | Rtl.Not, Un (Rtl.Not, x) -> x
  | (Rtl.Sext Width.W64 | Rtl.Zext Width.W64), _ -> t
  | Rtl.Zext w, _ when fits w Rtl.Unsigned t -> t
  | Rtl.Sext w, _ when fits w Rtl.Signed t -> t
  | Rtl.Zext w, Un (Rtl.Zext w', x) when Width.compare w w' < 0 ->
    un ctx (Rtl.Zext w) x
  | Rtl.Sext w, Un ((Rtl.Sext w' | Rtl.Zext w'), x)
    when Width.compare w w' < 0 ->
    un ctx (Rtl.Sext w) x
  | Rtl.Zext w, Un (Rtl.Sext w', x) when Width.equal w w' ->
    un ctx (Rtl.Zext w) x
  | _ -> Un (op, t)

(* extension of a raw w-byte payload (the low bytes of [v]) *)
let extend ctx w sign v =
  match sign with
  | Rtl.Unsigned -> un ctx (Rtl.Zext w) v
  | Rtl.Signed -> un ctx (Rtl.Sext w) v

let rec ext ctx src pos w sign =
  (* Extract uses only the low 3 bits of the position *)
  let pos = match pos with Con p -> Con (Int64.logand p 7L) | p -> p in
  match (src, pos) with
  | Con v, Con p ->
    Con
      (Rtl.extract_bytes v ~pos:(Int64.to_int p) ~width:w ~sign)
  | _, Con 0L -> extend ctx w sign src
  | Ins (dst, ins_src, ins_pos, ins_w), _ -> (
    let ins_pos =
      match ins_pos with Con p -> Con (Int64.logand p 7L) | p -> p
    in
    if equal pos ins_pos && Width.equal w ins_w then
      (* reading back exactly the inserted field. For constant positions
         this is exact when the field stays inside the register; for
         symbolic positions it relies on the alignment the old side's
         trapping access guarantees (the shapes only arise from the
         legalizer's container expansion on such machines). *)
      match pos with
      | Con p when Int64.to_int p + Width.bytes w <= 8 ->
        extend ctx w sign ins_src
      | Con _ -> Ext (src, pos, w, sign)
      | _ when Width.equal ctx.word Width.W64 -> extend ctx w sign ins_src
      | _ -> Ext (src, pos, w, sign)
    else
      match (pos, ins_pos) with
      | Con p, Con q
        when Int64.to_int p + Width.bytes w <= 8
             && (Int64.to_int q >= Int64.to_int p + Width.bytes w
                || Int64.to_int q + Width.bytes ins_w <= Int64.to_int p) ->
        (* the insert landed in disjoint bytes of the register *)
        ext ctx dst pos w sign
      | _ -> Ext (src, pos, w, sign))
  | Read (m, a, wr, _), Con k
    when Int64.to_int k + Width.bytes w <= Width.bytes wr ->
    (* bytes k..k+w-1 of a wide load are the narrow load at a+k: the
       coalescer's extract shape *)
    read ctx m (bin ctx Rtl.Add a (Con k)) w sign
  | Read (m, a8, Width.W64, Rtl.Unsigned), _
    when Width.equal ctx.word Width.W64
         && equal a8 (bin ctx Rtl.And pos (Con (-8L))) ->
    (* the legalizer's container load: LDQ_U at pos & -8 then extract at
       pos is the aligned narrow load at pos (the old side's access
       traps unless pos is w-aligned, so pos's field cannot straddle the
       container) *)
    read ctx m pos w sign
  | _ -> Ext (src, pos, w, sign)

and ins ctx dst src pos w =
  let pos = match pos with Con p -> Con (Int64.logand p 7L) | p -> p in
  match (dst, src, pos) with
  | Con d, Con s, Con p ->
    Con (Rtl.insert_bytes d ~src:s ~pos:(Int64.to_int p) ~width:w)
  | _, _, Con 0L when Width.equal w Width.W64 -> src
  | Ins (d0, _, pos', w'), _, _ when equal pos pos' && Width.equal w w' ->
    ins ctx d0 src pos w
  | _ -> Ins (dst, src, pos, w)

(* select over store *)
and read ctx m a w sign =
  match m with
  | MWrite (m', aw, ww, v) ->
    let wb = Width.bytes w and wwb = Width.bytes ww in
    if covers aw wwb a wb then
      (* the read falls entirely inside the stored value *)
      let _, ka = split_addr a and _, kw = split_addr aw in
      ext ctx v (Con (Int64.sub ka kw)) w sign
    else if disjoint ctx a wb aw wwb then read ctx m' a w sign
    else Read (m, a, w, sign)
  | MSym _ -> Read (m, a, w, sign)

(* store; the result stays canonical:
   - storing back what is already there is the identity;
   - a store fully covered by the new one is dropped;
   - the legalizer's split-store pair re-fuses into the wide store;
   - the legalizer's container store (load container / insert / store
     container) collapses to the narrow store it implements;
   - adjacent provably-disjoint stores are kept sorted by address so
     both sides of a schedule converge to the same chain. *)
and write ctx m a w v =
  let wb = Width.bytes w in
  let identity () =
    match v with
    | Read (m0, a0, w0, _) ->
      equal_mem m0 m && equal a0 a && Width.compare w w0 <= 0
    | Un ((Rtl.Zext we | Rtl.Sext we), Read (m0, a0, w0, _)) ->
      Width.compare w we <= 0 && Width.compare w w0 <= 0 && equal_mem m0 m
      && equal a0 a
    | _ -> false
  in
  if identity () then m
  else
    (* container store: [a] is the container base [pos & -8] and [v] is
       the container's former bytes with the narrow field replaced *)
    let container () =
      if not (Width.equal ctx.word Width.W64 && Width.equal w Width.W64)
      then None
      else
        match v with
        | Ins (Read (m', a8', Width.W64, Rtl.Unsigned), src, pos, wn)
          when equal a8' a && equal a (bin ctx Rtl.And pos (Con (-8L))) -> (
          match strip_disjoint ctx m a 8 with
          | Some m0 when equal_mem m0 m' -> Some (write ctx m pos wn src)
          | _ -> None)
        | _ -> None
    in
    match container () with
    | Some m'' -> m''
    | None -> (
      match m with
      (* overwrite: the older store's bytes are fully covered *)
      | MWrite (m0, a0, w0, _) when covers a wb a0 (Width.bytes w0) ->
        write ctx m0 a w v
      (* split-store fusion, low half stored first *)
      | MWrite (m0, a0, Width.W32, v0)
        when Width.equal w Width.W32
             && equal a (bin ctx Rtl.Add a0 (Con 4L))
             && equal v (bin ctx Rtl.Lshr v0 (Con 32L)) ->
        write ctx m0 a0 Width.W64 v0
      (* split-store fusion, high half stored first *)
      | MWrite (m0, a0, Width.W32, v0)
        when Width.equal w Width.W32
             && equal a0 (bin ctx Rtl.Add a (Con 4L))
             && equal v0 (bin ctx Rtl.Lshr v (Con 32L)) ->
        write ctx m0 a Width.W64 v
      (* canonical order of independent stores (insertion sort step) *)
      | MWrite (m0, a0, w0, v0)
        when disjoint ctx a wb a0 (Width.bytes w0)
             && addr_lt a a0 ->
        MWrite (write ctx m0 a w v, a0, w0, v0)
      | _ -> MWrite (m, a, w, v))

(* strictly-before order on addresses: same base by offset, otherwise by
   the structural order (deterministic on both sides) *)
and addr_lt a b =
  let ba, ka = split_addr a and bb, kb = split_addr b in
  if equal ba bb then Int64.compare ka kb < 0
  else compare_term ba bb < 0

(* peel stores provably disjoint from [a, a+n) off the top of [m] *)
and strip_disjoint ctx m a n =
  match m with
  | MWrite (m', aw, ww, _) when disjoint ctx a n aw (Width.bytes ww) ->
    strip_disjoint ctx m' a n
  | m -> Some m

(* Public entry points intern their results: every composite node an env
   can hold is hash-consed in the ctx's table, so the old and new
   executions of a block pair converge on one physical node per value
   and their final comparison runs on the graph, not the tree. The
   rewriting workers above stay raw — their intermediates are shallow
   wrappers around already-interned children, which intern in O(1)
   here. *)
let bin ctx op a b = intern ctx.it (bin ctx op a b)
let un ctx op t = intern ctx.it (un ctx op t)
let ext ctx src pos w sign = intern ctx.it (ext ctx src pos w sign)
let ins ctx dst src pos w = intern ctx.it (ins ctx dst src pos w)
let read ctx m a w sign = intern ctx.it (read ctx m a w sign)
let write ctx m a w v = intern_mem ctx.it (write ctx m a w v)

(* --- execution ------------------------------------------------------ *)

type event = { ev_index : int; ev_func : string; ev_args : term list }

type env = {
  regs : term Reg.Map.t;
  mem : mem;
  events : event list;
  ncall : int;
}

let empty_env =
  { regs = Reg.Map.empty; mem = MSym MEntry; events = []; ncall = 0 }

let lookup env r =
  match Reg.Map.find_opt r env.regs with
  | Some t -> t
  | None -> Sym (SEntry r)

let operand env = function
  | Rtl.Reg r -> lookup env r
  | Rtl.Imm i -> Con i

let set env r t = { env with regs = Reg.Map.add r t env.regs }

let effective ctx env (m : Rtl.mem) =
  let a = bin ctx Rtl.Add (lookup env m.base) (Con m.disp) in
  if m.aligned then a
  else
    (* an unaligned access silently hits the enclosing aligned word *)
    bin ctx Rtl.And a (Con (Int64.of_int (-Width.bytes m.width)))

let exec_inst ctx env (i : Rtl.inst) =
  match i.kind with
  | Rtl.Move (d, o) -> set env d (operand env o)
  | Rtl.Binop (op, d, a, b) ->
    set env d (bin ctx op (operand env a) (operand env b))
  | Rtl.Unop (op, d, a) -> set env d (un ctx op (operand env a))
  | Rtl.Load { dst; src; sign } ->
    set env dst (read ctx env.mem (effective ctx env src) src.width sign)
  | Rtl.Store { src; dst } ->
    { env with
      mem = write ctx env.mem (effective ctx env dst) dst.width
              (operand env src) }
  | Rtl.Extract { dst; src; pos; width; sign } ->
    set env dst (ext ctx (lookup env src) (operand env pos) width sign)
  | Rtl.Insert { dst; src; pos; width } ->
    set env dst
      (ins ctx (lookup env dst) (operand env src) (operand env pos) width)
  | Rtl.Call { dst; func; args } ->
    let ev =
      { ev_index = env.ncall; ev_func = func;
        ev_args = List.map (operand env) args }
    in
    let env =
      { env with events = ev :: env.events; ncall = env.ncall + 1;
        mem = MSym (MCall ev.ev_index) }
    in
    (match dst with
    | Some d -> set env d (Sym (SCall ev.ev_index))
    | None -> env)
  | Rtl.Label _ | Rtl.Nop | Rtl.Jump _ | Rtl.Branch _ | Rtl.Ret _ -> env

let exec_insts ctx env insts = List.fold_left (exec_inst ctx) env insts

(* --- printing and mismatch minimization ----------------------------- *)

let pp_sym ppf = function
  | SEntry r -> Format.fprintf ppf "%s" (Reg.to_string r)
  | SCall n -> Format.fprintf ppf "call#%d" n

let cmp_name = function
  | Rtl.Eq -> "eq" | Rtl.Ne -> "ne" | Rtl.Lt -> "lt" | Rtl.Le -> "le"
  | Rtl.Gt -> "gt" | Rtl.Ge -> "ge" | Rtl.Ltu -> "ltu" | Rtl.Leu -> "leu"
  | Rtl.Gtu -> "gtu" | Rtl.Geu -> "geu"

let binop_name = function
  | Rtl.Add -> "add" | Rtl.Sub -> "sub" | Rtl.Mul -> "mul"
  | Rtl.Div -> "div" | Rtl.Rem -> "rem" | Rtl.And -> "and"
  | Rtl.Or -> "or" | Rtl.Xor -> "xor" | Rtl.Shl -> "shl"
  | Rtl.Lshr -> "lshr" | Rtl.Ashr -> "ashr"
  | Rtl.Cmp c -> "cmp." ^ cmp_name c

let sign_tag = function Rtl.Signed -> "s" | Rtl.Unsigned -> "u"

let rec pp_term ppf = function
  | Sym s -> pp_sym ppf s
  | Con c -> Format.fprintf ppf "%Ld" c
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%s %a %a)" (binop_name op) pp_term a pp_term b
  | Un (Rtl.Neg, a) -> Format.fprintf ppf "(neg %a)" pp_term a
  | Un (Rtl.Not, a) -> Format.fprintf ppf "(not %a)" pp_term a
  | Un (Rtl.Sext w, a) ->
    Format.fprintf ppf "(sext.%a %a)" Width.pp w pp_term a
  | Un (Rtl.Zext w, a) ->
    Format.fprintf ppf "(zext.%a %a)" Width.pp w pp_term a
  | Ext (s, p, w, g) ->
    Format.fprintf ppf "(ext.%a.%s %a @@%a)" Width.pp w (sign_tag g) pp_term
      s pp_term p
  | Ins (d, s, p, w) ->
    Format.fprintf ppf "(ins.%a %a <- %a @@%a)" Width.pp w pp_term d pp_term
      s pp_term p
  | Read (m, a, w, g) ->
    Format.fprintf ppf "(load.%a.%s %a %a)" Width.pp w (sign_tag g) pp_mem m
      pp_term a

and pp_mem ppf = function
  | MSym MEntry -> Format.pp_print_string ppf "M0"
  | MSym (MCall n) -> Format.fprintf ppf "M.call#%d" n
  | MWrite (m, a, w, v) ->
    Format.fprintf ppf "(store.%a %a %a %a)" Width.pp w pp_mem m pp_term a
      pp_term v

(* node count of the value graph: each physically distinct node counts
   once, so shared (interned) subterms cannot blow the size up to the
   tree's *)
let term_size t =
  let seen_t = TermTbl.create 64 and seen_m = MemTbl.create 16 in
  let rec go t =
    if TermTbl.mem seen_t t then 0
    else begin
      TermTbl.add seen_t t ();
      match t with
      | Sym _ | Con _ -> 1
      | Un (_, a) -> 1 + go a
      | Bin (_, a, b) -> 1 + go a + go b
      | Ext (s, p, _, _) -> 1 + go s + go p
      | Ins (d, s, p, _) -> 1 + go d + go s + go p
      | Read (m, a, _, _) -> 1 + go_mem m + go a
    end
  and go_mem m =
    if MemTbl.mem seen_m m then 0
    else begin
      MemTbl.add seen_m m ();
      match m with
      | MSym _ -> 1
      | MWrite (m, a, _, v) -> 1 + go_mem m + go a + go v
    end
  in
  go t

(* Walk down through equal constructors while exactly one child pair
   differs: the smallest honest mismatch to show in a diagnostic. *)
let rec first_diff a b =
  let children = function
    | Sym _ | Con _ -> []
    | Un (_, x) -> [ x ]
    | Bin (_, x, y) -> [ x; y ]
    | Ext (s, p, _, _) -> [ s; p ]
    | Ins (d, s, p, _) -> [ d; s; p ]
    | Read (_, x, _, _) -> [ x ]
  in
  let same_shape =
    match (a, b) with
    | Bin (o1, _, _), Bin (o2, _, _) -> o1 = o2
    | Un (o1, _), Un (o2, _) -> o1 = o2
    | Ext (_, _, w1, g1), Ext (_, _, w2, g2) -> Width.equal w1 w2 && g1 = g2
    | Ins (_, _, _, w1), Ins (_, _, _, w2) -> Width.equal w1 w2
    | Read (m1, _, w1, g1), Read (m2, _, w2, g2) ->
      Width.equal w1 w2 && g1 = g2 && equal_mem m1 m2
    | _ -> false
  in
  if not same_shape then (a, b)
  else
    let diffs =
      List.filter
        (fun (x, y) -> not (equal x y))
        (List.combine (children a) (children b))
    in
    match diffs with [ (x, y) ] -> first_diff x y | _ -> (a, b)

let first_diff_mem m1 m2 =
  match (m1, m2) with
  | MWrite (n1, a1, w1, v1), MWrite (n2, a2, w2, v2)
    when Width.equal w1 w2 && equal_mem n1 n2 ->
    if equal a1 a2 && not (equal v1 v2) then Either.Left (first_diff v1 v2)
    else if (not (equal a1 a2)) && equal v1 v2 then
      Either.Left (first_diff a1 a2)
    else Either.Right (m1, m2)
  | _ -> Either.Right (m1, m2)
