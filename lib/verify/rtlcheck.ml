open Mac_rtl
module Cfg = Mac_cfg.Cfg
module Analysis = Mac_dataflow.Analysis
module Reaching = Mac_dataflow.Reaching
module Liveness = Mac_dataflow.Liveness
module Machine = Mac_machine.Machine

(* --- structure: labels, uids, targets, terminator ------------------- *)

let structural_checks ~pass (f : Func.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let labels = Hashtbl.create 16 in
  let uids = Hashtbl.create 64 in
  List.iter
    (fun (i : Rtl.inst) ->
      if Hashtbl.mem uids i.uid then
        add (Diagnostic.errorf ~pass ~uid:i.uid "duplicate uid %d" i.uid)
      else Hashtbl.add uids i.uid ();
      match i.kind with
      | Rtl.Label l ->
        if Hashtbl.mem labels l then
          add (Diagnostic.errorf ~pass ~uid:i.uid "duplicate label %s" l)
        else Hashtbl.add labels l ()
      | _ -> ())
    f.body;
  List.iter
    (fun (i : Rtl.inst) ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem labels l) then
            add
              (Diagnostic.errorf ~pass ~uid:i.uid
                 "undefined branch target %s in %s" l (Rtl.to_string i.kind)))
        (Rtl.branch_targets i.kind))
    f.body;
  (match List.rev f.body with
  | [] -> add (Diagnostic.error ~pass "empty body")
  | last :: _ when Rtl.is_terminator last.kind -> ()
  | last :: _ ->
    add
      (Diagnostic.errorf ~pass ~uid:last.uid
         "body can fall through its last instruction: %s"
         (Rtl.to_string last.kind)));
  List.rev !diags

(* --- operand sanity: field positions, shift amounts, widths --------- *)

let operand_checks ?machine ~pass (f : Func.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let check_field_pos uid what pos width =
    match pos with
    | Rtl.Imm p ->
      if
        Int64.compare p 0L < 0
        || Int64.compare (Int64.add p (Int64.of_int (Width.bytes width))) 8L
           > 0
      then
        add
          (Diagnostic.errorf ~pass ~uid
             "%s byte position %Ld with width %a leaves the 64-bit register"
             what p Width.pp width)
    | Rtl.Reg _ -> ()
  in
  let check_mem uid (m : Rtl.mem) ~is_load =
    match machine with
    | None -> ()
    | Some mc ->
      let legal =
        if is_load then Machine.legal_load mc m.width ~aligned:m.aligned
        else Machine.legal_store mc m.width ~aligned:m.aligned
      in
      if not legal then
        add
          (Diagnostic.errorf ~pass ~uid
             "%s of width %a (%s) is not legal on %s"
             (if is_load then "load" else "store")
             Width.pp m.width
             (if m.aligned then "aligned" else "unaligned")
             mc.Machine.name)
  in
  List.iter
    (fun (i : Rtl.inst) ->
      match i.kind with
      | Rtl.Extract { pos; width; _ } ->
        check_field_pos i.uid "extract" pos width
      | Rtl.Insert { pos; width; _ } -> check_field_pos i.uid "insert" pos width
      | Rtl.Binop ((Rtl.Shl | Rtl.Lshr | Rtl.Ashr), _, _, Rtl.Imm s)
        when Int64.compare s 0L < 0 || Int64.compare s 63L > 0 ->
        add
          (Diagnostic.warningf ~pass ~uid:i.uid
             "shift amount %Ld is reduced modulo 64" s)
      | Rtl.Load { src; _ } -> check_mem i.uid src ~is_load:true
      | Rtl.Store { dst; _ } -> check_mem i.uid dst ~is_load:false
      | _ -> ())
    f.body;
  List.rev !diags

(* --- CFG + dataflow: reachability and definedness ------------------- *)

let flow_checks am ~pass (f : Func.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let cfg = Analysis.cfg am in
  let reachable = Cfg.reachable cfg in
  Array.iter
    (fun (b : Cfg.block) ->
      if not reachable.(b.index) then
        let name =
          match b.label with
          | Some l -> Printf.sprintf "block %s" l
          | None -> Printf.sprintf "block #%d" b.index
        in
        add (Diagnostic.warningf ~pass "%s is unreachable" name))
    cfg.blocks;
  (* Registers with at least one definition anywhere (parameters and the
     frame pointer count: the caller and the simulator supply them). *)
  let ever_defined = Hashtbl.create 64 in
  let mark r = Hashtbl.replace ever_defined (Reg.id r) () in
  List.iter mark f.params;
  Option.iter mark f.fp_reg;
  List.iter (fun (i : Rtl.inst) -> List.iter mark (Rtl.defs i.kind)) f.body;
  let entry_ok r =
    List.exists (Reg.equal r) f.params
    || (match f.fp_reg with Some fp -> Reg.equal r fp | None -> false)
  in
  (* A use that no definition reaches is undefined on every path —
     unless the register is supplied from outside (a parameter or the
     spill frame pointer, which no instruction ever defines). *)
  let reaching = Analysis.reaching am in
  Array.iter
    (fun (b : Cfg.block) ->
      if reachable.(b.index) then
        List.iter
          (fun (i : Rtl.inst) ->
            List.iter
              (fun r ->
                let defs =
                  Reaching.defs_of_reg_reaching reaching ~block:b.index
                    ~before:i r
                in
                if Reaching.IntSet.is_empty defs && not (entry_ok r) then
                  add
                    (Diagnostic.errorf ~pass ~uid:i.uid
                       "use of undefined register %s in %s" (Reg.to_string r)
                       (Rtl.to_string i.kind)))
              (Rtl.uses i.kind))
          b.insts)
    cfg.blocks;
  (* A register live into the entry that is not supplied from outside is
     read before being written on some path. Registers that are never
     defined at all were already reported above. *)
  let live = Analysis.liveness am in
  Reg.Set.iter
    (fun r ->
      if (not (entry_ok r)) && Hashtbl.mem ever_defined (Reg.id r) then
        add
          (Diagnostic.warningf ~pass
             "register %s may be read before it is written on some path"
             (Reg.to_string r)))
    (Liveness.live_in live (Cfg.entry cfg));
  List.rev !diags

let check_func ?machine ?analysis ~pass (f : Func.t) =
  (* every diagnostic leaves here carrying the function's name *)
  let tag = List.map (Diagnostic.with_func f.name) in
  let structural = structural_checks ~pass f in
  let operands = operand_checks ?machine ~pass f in
  (* The cached-analysis coherence check runs before any cached fact is
     consumed: a stale CFG view means some pass declared a [preserves]
     set it did not honour, and every fact derived from it is suspect. *)
  let coherence =
    match analysis with
    | None -> []
    | Some am -> (
      match Analysis.coherent am with
      | Ok () -> []
      | Error msg ->
        [ Diagnostic.errorf ~pass
            "analysis cache incoherent: %s (a pass declared a preserves \
             set it did not honour)"
            msg ])
  in
  if Diagnostic.has_errors structural || coherence <> [] then
    tag (structural @ operands @ coherence)
  else
    let am =
      match analysis with Some am -> am | None -> Analysis.create f
    in
    tag (structural @ operands @ flow_checks am ~pass f)
