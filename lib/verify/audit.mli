(** Independent coalescing safety audit (Rtlcheck layer 2).

    For every loop the coalescer reports as transformed, this module
    re-derives the safety argument of the paper's Fig. 4 and Fig. 5 from
    the {e output} RTL alone — it shares no state with
    {!Mac_core.Coalesce} beyond the loop labels in the report:

    - {b windows}: every [Extract] of a wide loaded value and every
      [Insert] into a wide store buffer must stay inside the wide
      reference's byte window, the window width must be a legal access
      width for the machine, and a wide store's window must be fully
      covered by member inserts (a partially covered window would invent
      byte values);
    - {b footprints}: re-partitioning both the coalesced main loop and the
      untouched safe copy (via {!Mac_core.Partition}) and matching
      partitions by their symbolic base, the main loop must advance
      [factor] times as far per iteration, write {e exactly} the bytes
      [factor] safe iterations write, and read only within the
      word-aligned envelope of what they read;
    - {b ordering}: each member's {e semantic} program point (its
      extract/insert) is compared with its {e effective} one (the wide
      reference): any load/store pair whose semantic and effective orders
      disagree has been reordered by the transformation — within one
      partition that is an error if the byte intervals overlap, across
      partitions it must be covered by a run-time alias guard;
    - {b guards}: the dispatch block is symbolically executed with
      {!Mac_opt.Linform} to attribute each [x & (w-1) <> 0 -> safe]
      alignment guard to the partition window it protects, and the
      required guards (and enough alias-overlap branches) must all be
      present and branch to the safe loop.

    When the coalescer discharged a guard statically, the report carries a
    {!Mac_core.Disambig} certificate instead. The audit re-verifies every
    certificate from the output RTL (its own congruence solve, trip-count
    and extent derivation) and lets only {e verified} certificates stand in
    for the dynamic guards the coverage checks demand; a certificate that
    fails re-verification is an error-severity diagnostic.

    The audit is meant to run right after the coalescing pass, before
    legalization rewrites narrow references into wide-plus-extract shapes
    of its own. *)

val run :
  ?analysis:Mac_dataflow.Analysis.t ->
  ?facts:Mac_core.Disambig.facts ->
  Mac_rtl.Func.t ->
  machine:Mac_machine.Machine.t ->
  reports:Mac_core.Coalesce.loop_report list ->
  Diagnostic.t list
(** Audit every [Coalesced] loop of the function. Non-coalesced reports
    produce no diagnostics. With [?analysis], the loop bodies are located
    through the manager's cached CFG view instead of rebuilding it per
    report. [?facts] (default {!Mac_core.Disambig.empty}) must be the same
    facts the coalescer was given; certificates cannot verify without
    them. *)
