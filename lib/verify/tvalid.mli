(** Per-pass translation validation.

    After a pass runs, {!validate} proves the output function equivalent
    to a snapshot of the input by pairing their CFGs from the entry and
    comparing, per paired region, the normalized symbolic terms
    ({!Symexec}) of every register live into the next region, the final
    memory, the call-event sequence and the return value.

    Both sides are executed from the {e same} entry environment, seeded
    with equalities that provably hold at the old block's entry (an
    available-expression analysis plus {!Mac_dataflow.Congruence}), so
    cross-block rewrites — CSE reusing a value over an extended basic
    block, copy propagation through a join — do not read as mismatches.

    Scalar passes are matched exactly. The two loop-restructuring passes
    ([coalesce], [pipeline-sched]) are matched with region cut-points:
    each transformed loop (named by its report) is carved out and
    justified by its own certificate audit, and matching resumes at the
    loop's continuation, anchored by instruction uids. Passes that
    rename wholesale ([strength-reduce], [regalloc]) fall back to
    Rtlcheck + their audits and are recorded as such, never silently
    skipped. *)

open Mac_rtl

type pass_class = Exact | Region | Fallback

val classify : string -> pass_class

type result = {
  blocks_checked : int;  (** block pairs proved equivalent by execution *)
  blocks_skipped : int;
      (** block pairs discharged by the incremental skip ladder: equal
          generic transfers (same exit, events, memory, and terms for
          every new-side live-out register) are substitutable under any
          entry environment, so symbolic re-execution is skipped and
          only the successor pairs are enqueued *)
  regions_skipped : int;  (** loop regions justified by certificates *)
  fallback : string option;  (** whole-pass fallback reason, if any *)
  warnings : Diagnostic.t list;
}

val snapshot : Func.t -> Func.t
(** A shallow copy of the function as a pass input (passes mutate in
    place; bodies and instructions themselves are immutable). *)

(** {1 Cross-pass memoization} *)

type cache
(** The validator's cross-pass memo: a persistent hash-consing arena for
    {!Symexec} terms, per-body analysis summaries (CFG view, in-degrees,
    and lazily the congruence/available-expression/liveness solutions)
    keyed by body content, and per-block generic transfers keyed by the
    machine word and the block's kind list. Between consecutive
    validations the old side of the later IS the new side of the earlier,
    so summaries carry over; unchanged blocks hit the same transfer entry
    on both sides and are skipped without re-execution. Keys are the
    content itself (hash-bucketed, confirmed structurally), so a stale
    hit is impossible by construction and a poisoned mapping is caught by
    {!cache_audit}. *)

val create_cache : unit -> cache

val cache_audit : cache -> (unit, string) Stdlib.result
(** Re-derive every stored key from the stored content and re-flatten
    every cached CFG view against the body it claims to describe. *)

type Mac_dataflow.Analysis.tvalid_cache += Cache of cache

val cache_of_analysis : Mac_dataflow.Analysis.t -> cache
(** The cache registered in the manager's [Tvalid] slot, creating a
    fresh one (with {!cache_audit} as its self-audit, so
    [Analysis.coherent] covers it) if a pass invalidated the slot. *)

val test_poison_cache : cache -> bool
(** Corrupt one cached mapping in place (adversarial tests only);
    [false] when the cache holds nothing to poison. *)

val validate :
  ?cache:cache ->
  machine:Mac_machine.Machine.t ->
  facts:Mac_core.Disambig.facts ->
  pass:string ->
  ?reports:Mac_core.Coalesce.loop_report list ->
  ?sched_reports:
    (Mac_opt.Pipeline_sched.report * Mac_opt.Pipeline_sched.cert option)
    list ->
  old_f:Func.t ->
  new_f:Func.t ->
  unit ->
  (result, Diagnostic.t) Stdlib.result
(** [old_f] is the {!snapshot} taken before the pass, [new_f] the
    function it produced. [reports]/[sched_reports] name the loops the
    region passes transformed. An [Error] diagnostic carries the pass,
    the function and a minimized mismatching term pair. *)

(** {1 Aggregated per-pass accounting (for [Pipeline.compiled])} *)

type agg = {
  mutable runs : int;  (** validations performed *)
  mutable blocks : int;  (** pairs proved by symbolic execution *)
  mutable skipped : int;  (** pairs discharged by the skip ladder *)
  mutable regions : int;
  mutable fallbacks : int;
  mutable fallback_reason : string option;
  mutable seconds : float;
}

val agg_zero : unit -> agg
val pp_result : Format.formatter -> result -> unit
