(** Per-pass translation validation.

    After a pass runs, {!validate} proves the output function equivalent
    to a snapshot of the input by pairing their CFGs from the entry and
    comparing, per paired region, the normalized symbolic terms
    ({!Symexec}) of every register live into the next region, the final
    memory, the call-event sequence and the return value.

    Both sides are executed from the {e same} entry environment, seeded
    with equalities that provably hold at the old block's entry (an
    available-expression analysis plus {!Mac_dataflow.Congruence}), so
    cross-block rewrites — CSE reusing a value over an extended basic
    block, copy propagation through a join — do not read as mismatches.

    Scalar passes are matched exactly. The two loop-restructuring passes
    ([coalesce], [pipeline-sched]) are matched with region cut-points:
    each transformed loop (named by its report) is carved out and
    justified by its own certificate audit, and matching resumes at the
    loop's continuation, anchored by instruction uids. Passes that
    rename wholesale ([strength-reduce], [regalloc]) fall back to
    Rtlcheck + their audits and are recorded as such, never silently
    skipped. *)

open Mac_rtl

type pass_class = Exact | Region | Fallback

val classify : string -> pass_class

type result = {
  blocks_checked : int;  (** block pairs proved equivalent *)
  regions_skipped : int;  (** loop regions justified by certificates *)
  fallback : string option;  (** whole-pass fallback reason, if any *)
  warnings : Diagnostic.t list;
}

val snapshot : Func.t -> Func.t
(** A shallow copy of the function as a pass input (passes mutate in
    place; bodies and instructions themselves are immutable). *)

val validate :
  machine:Mac_machine.Machine.t ->
  facts:Mac_core.Disambig.facts ->
  pass:string ->
  ?reports:Mac_core.Coalesce.loop_report list ->
  ?sched_reports:
    (Mac_opt.Pipeline_sched.report * Mac_opt.Pipeline_sched.cert option)
    list ->
  old_f:Func.t ->
  new_f:Func.t ->
  unit ->
  (result, Diagnostic.t) Stdlib.result
(** [old_f] is the {!snapshot} taken before the pass, [new_f] the
    function it produced. [reports]/[sched_reports] name the loops the
    region passes transformed. An [Error] diagnostic carries the pass,
    the function and a minimized mismatching term pair. *)

(** {1 Aggregated per-pass accounting (for [Pipeline.compiled])} *)

type agg = {
  mutable runs : int;  (** validations performed *)
  mutable blocks : int;
  mutable regions : int;
  mutable fallbacks : int;
  mutable seconds : float;
}

val agg_zero : unit -> agg
val pp_result : Format.formatter -> result -> unit
