(** Per-pass RTL well-formedness verification (Rtlcheck layer 1).

    Every transformation pass of the pipeline must leave the function in a
    state the rest of the back end (and the simulator) can rely on. This
    module re-derives those invariants from scratch — deliberately sharing
    no code with the passes it checks:

    - structure: unique labels and uids, defined branch targets, a body
      that cannot fall off the end;
    - operand sanity: [Extract]/[Insert] byte positions inside the 64-bit
      register, shift amounts inside the operand width, memory access
      widths the target machine can actually issue (checked only once
      legalization has run, via [?machine]);
    - CFG invariants via {!Mac_cfg.Cfg}: unreachable blocks;
    - definedness via {!Mac_dataflow.Reaching} and
      {!Mac_dataflow.Liveness}: a use no definition reaches on {e any}
      path is an error; a register live into the entry block that is
      neither a parameter nor the frame pointer is possibly read before
      being written on {e some} path and reported as a warning. *)

open Mac_rtl

val check_func :
  ?machine:Mac_machine.Machine.t ->
  ?analysis:Mac_dataflow.Analysis.t ->
  pass:string ->
  Func.t ->
  Diagnostic.t list
(** All diagnostics for [f], tagged with [pass]. When [?machine] is given
    the memory widths of every load/store must be legal for it — only
    meaningful after {!Mac_opt.Legalize} has run. Structural errors
    (duplicate labels, undefined targets, missing terminator) suppress the
    CFG- and dataflow-based layers, which assume a buildable graph.

    When [?analysis] is given, the checker first audits the manager
    itself: a memoised CFG view that no longer matches the body
    instruction-for-instruction means some pass declared a [preserves]
    set it did not honour, reported as an error (and the flow checks,
    which would consume the stale facts, are suppressed). When the cache
    is coherent the flow checks reuse its CFG, reaching and liveness
    facts instead of recomputing them. *)
