open Mac_rtl

type block = {
  index : int;
  label : Rtl.label option;
  insts : Rtl.inst list;
}

type t = {
  func : Func.t;
  blocks : block array;
  succ : int list array;
  pred : int list array;
}

let split_blocks (body : Rtl.inst list) : Rtl.inst list list =
  (* Accumulate instructions; a Label starts a new block, and the
     instruction after a terminator starts a new block. *)
  let finish acc cur =
    match cur with [] -> acc | _ -> List.rev cur :: acc
  in
  let rec go acc cur = function
    | [] -> List.rev (finish acc cur)
    | ({ Rtl.kind = Rtl.Label _; _ } as i) :: rest ->
      go (finish acc cur) [ i ] rest
    | i :: rest when Rtl.is_terminator i.Rtl.kind ->
      go (finish acc (i :: cur)) [] rest
    | i :: rest -> go acc (i :: cur) rest
  in
  go [] [] body

let build (func : Func.t) : t =
  let groups = split_blocks func.body in
  let blocks =
    List.mapi
      (fun index insts ->
        let label =
          match insts with
          | { Rtl.kind = Rtl.Label l; _ } :: _ -> Some l
          | _ -> None
        in
        { index; label; insts })
      groups
    |> Array.of_list
  in
  let n = Array.length blocks in
  let label_index = Hashtbl.create 16 in
  Array.iter
    (fun b ->
      match b.label with
      | Some l -> Hashtbl.replace label_index l b.index
      | None -> ())
    blocks;
  let succ = Array.make n [] and pred = Array.make n [] in
  let add_edge a b =
    if not (List.mem b succ.(a)) then begin
      succ.(a) <- succ.(a) @ [ b ];
      pred.(b) <- pred.(b) @ [ a ]
    end
  in
  Array.iter
    (fun b ->
      match List.rev b.insts with
      | [] -> ()
      | last :: _ -> (
        let fallthrough () =
          if b.index + 1 < n then add_edge b.index (b.index + 1)
        in
        match last.Rtl.kind with
        | Rtl.Jump l -> add_edge b.index (Hashtbl.find label_index l)
        | Rtl.Branch { target; _ } ->
          fallthrough ();
          add_edge b.index (Hashtbl.find label_index target)
        | Rtl.Ret _ -> ()
        | _ -> fallthrough ()))
    blocks;
  { func; blocks; succ; pred }

let entry (_ : t) = 0

let block_of_label t l =
  Array.to_seq t.blocks
  |> Seq.filter_map (fun b ->
         match b.label with
         | Some l' when String.equal l l' -> Some b.index
         | _ -> None)
  |> fun s -> Seq.uncons s |> Option.map fst

let non_label_insts b =
  List.filter
    (fun (i : Rtl.inst) ->
      match i.kind with Rtl.Label _ -> false | _ -> true)
    b.insts

let reachable t =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs t.succ.(i)
    end
  in
  if n > 0 then dfs 0;
  seen

let rpo t =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let post = ref [] in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs t.succ.(i);
      post := i :: !post
    end
  in
  if n > 0 then dfs 0;
  (* !post is already reversed postorder; unreachable blocks go last in
     index order so solvers still visit every block. *)
  let unreachable = ref [] in
  for i = n - 1 downto 0 do
    if not seen.(i) then unreachable := i :: !unreachable
  done;
  Array.of_list (!post @ !unreachable)

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "@[<v 2>block %d%a -> [%a]:@,%a@]@,"
        b.index
        (fun ppf -> function
          | Some l -> Format.fprintf ppf " (%s)" l
          | None -> ())
        b.label
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        t.succ.(b.index)
        (Format.pp_print_list Rtl.pp_inst)
        b.insts)
    t.blocks
