(** Control-flow graphs over RTL function bodies.

    The CFG is a read-only {e view}: transformation passes edit the flat
    instruction list in {!Mac_rtl.Func} and rebuild the view. Block 0 is the
    function entry. *)

open Mac_rtl

type block = {
  index : int;
  label : Rtl.label option;  (** the block's leading label, if any *)
  insts : Rtl.inst list;  (** including the label and the terminator *)
}

type t = {
  func : Func.t;
  blocks : block array;
  succ : int list array;
  pred : int list array;
}

val build : Func.t -> t
(** Split the body into maximal basic blocks (leaders are the first
    instruction, labels, and instructions after terminators) and compute
    edges. A block whose last instruction is not a terminator falls through
    to the next block. *)

val entry : t -> int
val block_of_label : t -> Rtl.label -> int option
val non_label_insts : block -> Rtl.inst list
(** The block's instructions without the leading label. *)

val reachable : t -> bool array
(** Blocks reachable from the entry. *)

val rpo : t -> int array
(** A dense visiting order for dataflow solvers: the reachable blocks in
    reverse postorder (entry first), followed by the unreachable blocks in
    index order (so every block is present exactly once). *)

val pp : Format.formatter -> t -> unit
