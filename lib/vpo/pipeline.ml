open Mac_rtl
module Machine = Mac_machine.Machine
module Coalesce = Mac_core.Coalesce
module Disambig = Mac_core.Disambig
module Linform = Mac_opt.Linform
module Diagnostic = Mac_verify.Diagnostic
module Analysis = Mac_dataflow.Analysis

type level = O0 | O1 | O2 | O3 | O4

let level_of_string = function
  | "O0" | "o0" | "0" -> Some O0
  | "O1" | "o1" | "1" -> Some O1
  | "O2" | "o2" | "2" -> Some O2
  | "O3" | "o3" | "3" -> Some O3
  | "O4" | "o4" | "4" -> Some O4
  | _ -> None

let level_to_string = function
  | O0 -> "O0"
  | O1 -> "O1"
  | O2 -> "O2"
  | O3 -> "O3"
  | O4 -> "O4"

type verify_level = Vnone | Vir | Vfull

let verify_level_of_string = function
  | "none" | "off" -> Some Vnone
  | "ir" -> Some Vir
  | "full" -> Some Vfull
  | _ -> None

let verify_level_to_string = function
  | Vnone -> "none"
  | Vir -> "ir"
  | Vfull -> "full"

type config = {
  machine : Machine.t;
  level : level;
  coalesce : Coalesce.options;
  legalize_first : bool;
  strength_reduce : bool;
  regalloc : int option;
  schedule : bool;
  pipeline_sched : bool;  (* the -Osched pass: modulo-schedule loops *)
  verify : verify_level;
  facts : (string * Disambig.facts) list;
}

let config ?(level = O4) ?(coalesce = Coalesce.default)
    ?(legalize_first = false) ?(strength_reduce = false) ?regalloc
    ?(schedule = false) ?(pipeline_sched = false) ?(verify = Vnone)
    ?(facts = []) machine =
  { machine; level; coalesce; legalize_first; strength_reduce; regalloc;
    schedule; pipeline_sched; verify; facts }

type compiled = {
  funcs : Func.t list;
  reports : (string * Coalesce.loop_report list) list;
  sched_reports :
    (string
    * (Mac_opt.Pipeline_sched.report * Mac_opt.Pipeline_sched.cert option)
      list)
    list;
  diags : (string * Diagnostic.t list) list;
  ams : (string * Mac_dataflow.Analysis.t) list;
  pass_seconds : (string * float) list;
  compile_seconds : float;
  guards_emitted : int;
  guards_elided : int;
  elision_reasons : (string * int) list;
  tvalid_stats : (string * Mac_verify.Tvalid.agg) list;
}

exception Verification_failed of Diagnostic.t

(* Test seams for the translation validator. [test_intercept] mutates the
   function after a pass has run but before the validator sees it (the
   mccd mutant-compile test injects a miscompile this way); [test_observe]
   captures (pass, old, new) snapshots for the qcheck mutation adversary.
   Both survive a fork, so a daemon test can arm them before serving. *)
let test_intercept : (string -> Func.t -> unit) option ref = ref None

let test_observe :
    (pass:string -> fname:string -> old_f:Func.t -> new_f:Func.t -> unit)
    option
    ref =
  ref None

(* Per-pass wall-clock accounting: one table per compilation, keyed by
   pass name, accumulated across fixpoint rounds and functions. *)
let add_time timings name dt =
  Hashtbl.replace timings name
    (dt +. Option.value (Hashtbl.find_opt timings name) ~default:0.)

let timed timings name thunk =
  let t0 = Unix.gettimeofday () in
  let r = thunk () in
  add_time timings name (Unix.gettimeofday () -. t0);
  r

(* The O1 fixed-point round. All six passes share [am]: Copyprop and Dce
   read their facts through it and invalidate precisely on mutation; the
   others do not consume cached analyses, so the runner invalidates for
   them with a statically known [preserves] set — Simplify folds branches
   and Cleanflow rewrites labels/jumps (nothing survives), while Cse and
   Combine only remove or rewrite plain instructions (the block structure,
   hence dominators and loops, survives). *)
let classic_rounds ?(tv = fun _name run -> run ()) am time (f : Func.t) =
  let dl = [ Analysis.Dom; Analysis.Loops ] in
  let pass name ~preserves run =
    (* [tv] wraps the pass run itself (snapshotting before, validating
       after) but not the cache invalidation; the per-pass timer sits
       inside so validation time is never billed to the pass *)
    let changed = tv name (fun () -> time name (fun () -> run f)) in
    (* the validator memo is content-addressed, so every honest rewrite
       preserves it; {!Analysis.coherent}'s audit polices the claim *)
    if changed then
      Analysis.invalidate am ~preserves:(Analysis.Tvalid :: preserves);
    changed
  in
  let rec go budget =
    if budget > 0 then begin
      let changed = ref false in
      if pass "simplify" ~preserves:[] Mac_opt.Simplify.run then
        changed := true;
      if
        tv "copyprop" (fun () ->
            time "copyprop" (fun () -> Mac_opt.Copyprop.run ~am f))
      then changed := true;
      if pass "cse" ~preserves:dl Mac_opt.Cse.run then changed := true;
      if pass "combine" ~preserves:dl Mac_opt.Combine.run then
        changed := true;
      if pass "cleanflow" ~preserves:[] Mac_opt.Cleanflow.run then
        changed := true;
      if
        tv "dce" (fun () -> time "dce" (fun () -> Mac_opt.Dce.run ~am f))
      then changed := true;
      if !changed then go (budget - 1)
    end
  in
  go 10

let classic_opts f =
  let am = Analysis.create f in
  classic_rounds am (fun _name thunk -> thunk ()) f

let coalesce_options cfg =
  match cfg.level with
  | O0 | O1 -> None
  | O2 -> Some { cfg.coalesce with Coalesce.unroll_only = true }
  | O3 ->
    Some
      { cfg.coalesce with Coalesce.unroll_only = false;
        coalesce_loads = true; coalesce_stores = false }
  | O4 ->
    Some
      { cfg.coalesce with Coalesce.unroll_only = false;
        coalesce_loads = true; coalesce_stores = true }

let compile_func cfg timings tvalid_tbl (f : Func.t) =
  let time name thunk = timed timings name thunk in
  let am = Analysis.create f in
  let cache = Mac_core.Profitability.create_cache () in
  let diags = ref [] in
  let fail_on_errors ds =
    diags := !diags @ ds;
    match Diagnostic.errors ds with
    | [] -> ()
    | d :: _ -> raise (Verification_failed d)
  in
  let facts =
    Option.value (List.assoc_opt f.name cfg.facts) ~default:Disambig.empty
  in
  (* --- per-pass translation validation (the Vfull backbone) ---------- *)
  let tvalid_on = cfg.verify = Vfull in
  let tv_record name res dt =
    let agg =
      match Hashtbl.find_opt tvalid_tbl name with
      | Some a -> a
      | None ->
        let a = Mac_verify.Tvalid.agg_zero () in
        Hashtbl.add tvalid_tbl name a;
        a
    in
    agg.Mac_verify.Tvalid.runs <- agg.Mac_verify.Tvalid.runs + 1;
    agg.Mac_verify.Tvalid.seconds <- agg.Mac_verify.Tvalid.seconds +. dt;
    match res with
    | Ok (r : Mac_verify.Tvalid.result) ->
      agg.Mac_verify.Tvalid.blocks <-
        agg.Mac_verify.Tvalid.blocks + r.Mac_verify.Tvalid.blocks_checked;
      agg.Mac_verify.Tvalid.skipped <-
        agg.Mac_verify.Tvalid.skipped + r.Mac_verify.Tvalid.blocks_skipped;
      agg.Mac_verify.Tvalid.regions <-
        agg.Mac_verify.Tvalid.regions + r.Mac_verify.Tvalid.regions_skipped;
      (match r.Mac_verify.Tvalid.fallback with
      | Some reason ->
        agg.Mac_verify.Tvalid.fallbacks <-
          agg.Mac_verify.Tvalid.fallbacks + 1;
        agg.Mac_verify.Tvalid.fallback_reason <- Some reason
      | None -> ())
    | Error _ -> ()
  in
  (* Validate [old_f -> f] for [name]: block-by-block symbolic
     equivalence for structure-preserving passes, region cut-points for
     the loop restructurers, a recorded fallback for the renamers. An
     error-severity mismatch fails the compilation like any other Vfull
     diagnostic. *)
  let tv_check ?reports ?sched_reports name old_f =
    (match !test_intercept with Some h -> h name f | None -> ());
    (match !test_observe with
    | Some h -> h ~pass:name ~fname:f.name ~old_f ~new_f:f
    | None -> ());
    let t0 = Unix.gettimeofday () in
    let res =
      (* the cross-pass memo rides in the analysis manager's [Tvalid]
         slot: passes that preserve it keep block skipping warm, a pass
         that drops it only costs a cold revalidation, and its self-audit
         runs with every checkpoint's coherence probe *)
      Mac_verify.Tvalid.validate
        ~cache:(Mac_verify.Tvalid.cache_of_analysis am)
        ~machine:cfg.machine ~facts ~pass:name ?reports ?sched_reports
        ~old_f ~new_f:f ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    add_time timings "tvalid" dt;
    tv_record name res dt;
    match res with
    | Ok r -> diags := !diags @ r.Mac_verify.Tvalid.warnings
    | Error d ->
      diags := !diags @ [ d ];
      raise (Verification_failed d)
  in
  (* wrapper for passes reporting a changed flag: skip the validator when
     the pass did nothing (old = new trivially), unless a test intercept
     is armed and may have mutated the function behind the pass's back *)
  let tv name run =
    if not tvalid_on then run ()
    else begin
      let old_f = Mac_verify.Tvalid.snapshot f in
      let changed = run () in
      if changed || !test_intercept <> None then tv_check name old_f;
      changed
    end
  in
  (* Every pass must leave a function {!Func.validate} accepts; with
     [verify <> Vnone] it must also satisfy the independent Rtlcheck
     invariants, and the pipeline stops at the first error-severity
     diagnostic, named after the offending pass. Rtlcheck is handed the
     analysis manager so it (a) audits the cache's coherence — catching a
     pass that lied about what it preserves — and (b) reuses the cached
     CFG/reaching/liveness facts instead of recomputing them. *)
  let checkpoint ?machine name =
    time "verify" (fun () ->
        (match Func.validate f with
        | Ok () -> ()
        | Error msg ->
          Fmt.failwith "pass %s produced an invalid function %s: %s" name
            f.name msg);
        if cfg.verify <> Vnone then
          fail_on_errors
            (Mac_verify.Rtlcheck.check_func ?machine ~analysis:am ~pass:name
               f))
  in
  let classic () = classic_rounds ~tv am time f in
  checkpoint "input";
  if cfg.level <> O0 then begin
    classic ();
    checkpoint "classic-opts"
  end;
  if cfg.strength_reduce && cfg.level <> O0 then begin
    (* The paper's EliminateInductionVariables: address computations become
       derived induction pointers (Fig. 1b shape); the second round — after
       the dead index arithmetic has been cleaned away — can retire the
       loop counter by rewriting the back branch to a pointer compare. *)
    ignore (time "strength" (fun () -> Mac_opt.Strength.run ~am f));
    classic ();
    ignore (time "strength" (fun () -> Mac_opt.Strength.run ~am f));
    classic ();
    checkpoint "strength-reduce";
    (* induction-variable rewriting renames wholesale; the validator
       records the fallback (Rtlcheck + the congruence solver's own
       consistency are the safety net here) *)
    if tvalid_on then tv_check "strength-reduce" f
  end;
  (* DESIGN.md decision 1 ablation: legalizing narrow references before
     coalescing hides them from the coalescer entirely. *)
  if cfg.legalize_first then begin
    ignore
      (tv "legalize-first" (fun () ->
           time "legalize" (fun () ->
               let changed = Mac_opt.Legalize.run f cfg.machine in
               (* 1:1-or-expanding rewrite of plain instructions: the block
                  structure survives, the register facts do not. *)
               Analysis.invalidate am
                 ~preserves:
                   [ Analysis.Dom; Analysis.Loops; Analysis.Tvalid ];
               changed)));
    checkpoint ~machine:cfg.machine "legalize-first"
  end;
  let tv_old = if tvalid_on then Some (Mac_verify.Tvalid.snapshot f) else None in
  let reports =
    match coalesce_options cfg with
    | Some opts ->
      time "coalesce" (fun () ->
          Coalesce.run ~am ~cache ~facts f ~machine:cfg.machine opts)
    | None -> []
  in
  (* transformed loops are carved out as regions justified by the audit
     below; everything around them (and every untouched loop) is matched
     exactly *)
  (match tv_old with
  | Some old_f -> tv_check ~reports "coalesce" old_f
  | None -> ());
  checkpoint "coalesce";
  (* The independent safety audit must see the coalesced loops before
     legalization rewrites narrow references into wide shapes of its own
     and before cleanup canonicalizes the dispatch code. It gets the same
     facts the coalescer consulted: every elision certificate in the
     reports must re-verify or the compilation fails. *)
  if cfg.verify = Vfull then
    time "verify" (fun () ->
        fail_on_errors
          (Mac_verify.Audit.run ~analysis:am ~facts f ~machine:cfg.machine
             ~reports));
  if cfg.level <> O0 then begin
    classic ();
    checkpoint "cleanup"
  end;
  ignore
    (tv "legalize" (fun () ->
         time "legalize" (fun () ->
             let changed = Mac_opt.Legalize.run f cfg.machine in
             Analysis.invalidate am
               ~preserves:[ Analysis.Dom; Analysis.Loops; Analysis.Tvalid ];
             changed)));
  checkpoint ~machine:cfg.machine "legalize";
  if cfg.level <> O0 then begin
    classic ();
    checkpoint ~machine:cfg.machine "final-cleanup"
  end;
  if cfg.schedule && cfg.level <> O0 then begin
    (* machine-level list scheduling of every block, post-legalization *)
    ignore
      (tv "schedule" (fun () ->
           time "schedule" (fun () ->
               let cfgv = Analysis.cfg am in
               let body' =
                 Array.to_list cfgv.blocks
                 |> List.concat_map (fun (b : Mac_cfg.Cfg.block) ->
                        Mac_opt.Sched.reorder cfg.machine b.insts)
               in
               Func.set_body f body';
               (* In-block reordering of plain instructions only. *)
               Analysis.invalidate am
                 ~preserves:
                   [ Analysis.Dom; Analysis.Loops; Analysis.Tvalid ];
               true)));
    checkpoint ~machine:cfg.machine "schedule"
  end;
  let sched_reports =
    if cfg.pipeline_sched && cfg.level <> O0 then begin
      (* the -Osched pass: modulo-schedule every simple loop, after
         legalization (the machine shapes being scheduled are final) and
         after the per-block list scheduler (the pipeliner rebuilds its
         loop bodies from scratch; nothing may reorder its kernels) *)
      let tv_old =
        if tvalid_on then Some (Mac_verify.Tvalid.snapshot f) else None
      in
      let changed, rs =
        time "pipeline-sched" (fun () ->
            Mac_opt.Pipeline_sched.run ~am ?max_regs:cfg.regalloc f
              ~machine:cfg.machine)
      in
      (* loop-restructuring transformation: nothing survives except the
         content-addressed validator memo *)
      if changed then Analysis.invalidate am ~preserves:[ Analysis.Tvalid ];
      (* pipelined kernels are regions justified by the schedule audit;
         in-place reorders and untouched loops are matched exactly *)
      (match tv_old with
      | Some old_f -> tv_check ~sched_reports:rs "pipeline-sched" old_f
      | None -> ());
      checkpoint ~machine:cfg.machine "pipeline-sched";
      (* the independent schedule audit re-verifies every certificate
         against a freshly rebuilt dependence graph *)
      if cfg.verify = Vfull then
        time "verify" (fun () ->
            fail_on_errors
              (Mac_verify.Sched_audit.run f ~machine:cfg.machine
                 ~sched_reports:rs));
      rs
    end
    else []
  in
  (match cfg.regalloc with
  | Some num_regs ->
    ignore (time "regalloc" (fun () -> Mac_opt.Regalloc.run ~am f ~num_regs));
    checkpoint ~machine:cfg.machine "regalloc";
    (* whole-function renaming onto machine registers: recorded fallback *)
    if tvalid_on then tv_check "regalloc" f
  | None -> ());
  (reports, sched_reports, !diags, am)

let pass_seconds_of timings =
  Hashtbl.fold (fun name dt acc -> (name, dt) :: acc) timings []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let compile_funcs cfg funcs =
  let t0 = Unix.gettimeofday () in
  let timings : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let tvalid_tbl : (string, Mac_verify.Tvalid.agg) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Functions are compiled independently — uid allocation, the analysis
     manager and the validator cache are all per-Func — so they fan out
     over domains ({!Mac_parallel.Pool} caps the worker count at the
     item count, so single-function sources stay on the calling domain).
     Each function accumulates into private timing/validation tables,
     merged afterwards in input order: totals are index-independent
     float/int sums, so the result is identical to a serial run. *)
  let per_func =
    Mac_parallel.Pool.map
      (fun f ->
        let tm : (string, float) Hashtbl.t = Hashtbl.create 16 in
        let tv : (string, Mac_verify.Tvalid.agg) Hashtbl.t =
          Hashtbl.create 16
        in
        let r = compile_func cfg tm tv f in
        (f.Func.name, r, tm, tv))
      funcs
  in
  List.iter
    (fun (_, _, tm, tv) ->
      Hashtbl.iter (fun name dt -> add_time timings name dt) tm;
      Hashtbl.iter
        (fun name (a : Mac_verify.Tvalid.agg) ->
          let g =
            match Hashtbl.find_opt tvalid_tbl name with
            | Some g -> g
            | None ->
              let g = Mac_verify.Tvalid.agg_zero () in
              Hashtbl.add tvalid_tbl name g;
              g
          in
          let open Mac_verify.Tvalid in
          g.runs <- g.runs + a.runs;
          g.blocks <- g.blocks + a.blocks;
          g.skipped <- g.skipped + a.skipped;
          g.regions <- g.regions + a.regions;
          g.fallbacks <- g.fallbacks + a.fallbacks;
          (match a.fallback_reason with
          | Some r -> g.fallback_reason <- Some r
          | None -> ());
          g.seconds <- g.seconds +. a.seconds)
        tv)
    per_func;
  let per_func = List.map (fun (n, r, _, _) -> (n, r)) per_func in
  let reports = List.map (fun (n, (r, _, _, _)) -> (n, r)) per_func in
  let all_reports = List.concat_map snd reports in
  let sum field =
    List.fold_left (fun acc r -> acc + field r) 0 all_reports
  in
  let elision_reasons =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (r : Coalesce.loop_report) ->
        List.iter
          (fun (e : Disambig.elision) ->
            Hashtbl.replace tbl e.Disambig.reason
              (1 + Option.value (Hashtbl.find_opt tbl e.Disambig.reason)
                     ~default:0))
          r.Coalesce.elisions)
      all_reports;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    funcs;
    reports;
    sched_reports = List.map (fun (n, (_, sr, _, _)) -> (n, sr)) per_func;
    diags = List.map (fun (n, (_, _, d, _)) -> (n, d)) per_func;
    ams = List.map (fun (n, (_, _, _, am)) -> (n, am)) per_func;
    pass_seconds = pass_seconds_of timings;
    compile_seconds = Unix.gettimeofday () -. t0;
    guards_emitted = sum (fun r -> r.Coalesce.guards_emitted);
    guards_elided = sum (fun r -> r.Coalesce.guards_elided);
    elision_reasons;
    tvalid_stats =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tvalid_tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

(* Facts declared in the source itself (parameter attributes), converted
   from the lowering's flat vocabulary and merged with any caller-supplied
   facts for the same function. *)
let facts_of_attrs (prog : Mac_minic.Ast.program) =
  let convert pf (acc : Disambig.facts) =
    match pf with
    | Mac_minic.Lower.Falign (r, k) ->
      { acc with Disambig.aligns = (r, k) :: acc.Disambig.aligns }
    | Mac_minic.Lower.Fnonneg r ->
      { acc with Disambig.nonnegs = r :: acc.Disambig.nonnegs }
    | Mac_minic.Lower.Falloc (r, id, { s_const; s_terms }) ->
      let size =
        List.fold_left
          (fun form (r', c) ->
            Linform.add form (Linform.mul_const (Linform.entry r') c))
          (Linform.const s_const) s_terms
      in
      { acc with Disambig.allocs = (r, id, size) :: acc.Disambig.allocs }
  in
  List.filter_map
    (fun (fd : Mac_minic.Ast.func) ->
      let facts =
        List.fold_right convert
          (Mac_minic.Lower.param_facts fd)
          Disambig.empty
      in
      if Disambig.no_facts facts then None else Some (fd.fname, facts))
    prog

let compile_source cfg src =
  let t0 = Unix.gettimeofday () in
  let prog = Mac_minic.Parser.parse src in
  let funcs = Mac_minic.Lower.program prog in
  let lower = Unix.gettimeofday () -. t0 in
  let cfg =
    {
      cfg with
      facts =
        List.fold_left
          (fun acc (n, f) ->
            match List.assoc_opt n acc with
            | Some g -> (n, Disambig.union g f) :: List.remove_assoc n acc
            | None -> (n, f) :: acc)
          cfg.facts (facts_of_attrs prog);
    }
  in
  let c = compile_funcs cfg funcs in
  {
    c with
    pass_seconds =
      (("lower", lower) :: c.pass_seconds)
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    compile_seconds = c.compile_seconds +. lower;
  }
