open Mac_rtl
module Machine = Mac_machine.Machine
module Coalesce = Mac_core.Coalesce
module Diagnostic = Mac_verify.Diagnostic

type level = O0 | O1 | O2 | O3 | O4

let level_of_string = function
  | "O0" | "o0" | "0" -> Some O0
  | "O1" | "o1" | "1" -> Some O1
  | "O2" | "o2" | "2" -> Some O2
  | "O3" | "o3" | "3" -> Some O3
  | "O4" | "o4" | "4" -> Some O4
  | _ -> None

let level_to_string = function
  | O0 -> "O0"
  | O1 -> "O1"
  | O2 -> "O2"
  | O3 -> "O3"
  | O4 -> "O4"

type verify_level = Vnone | Vir | Vfull

let verify_level_of_string = function
  | "none" | "off" -> Some Vnone
  | "ir" -> Some Vir
  | "full" -> Some Vfull
  | _ -> None

let verify_level_to_string = function
  | Vnone -> "none"
  | Vir -> "ir"
  | Vfull -> "full"

type config = {
  machine : Machine.t;
  level : level;
  coalesce : Coalesce.options;
  legalize_first : bool;
  strength_reduce : bool;
  regalloc : int option;
  schedule : bool;
  verify : verify_level;
}

let config ?(level = O4) ?(coalesce = Coalesce.default)
    ?(legalize_first = false) ?(strength_reduce = false) ?regalloc
    ?(schedule = false) ?(verify = Vnone) machine =
  { machine; level; coalesce; legalize_first; strength_reduce; regalloc;
    schedule; verify }

type compiled = {
  funcs : Func.t list;
  reports : (string * Coalesce.loop_report list) list;
  diags : (string * Diagnostic.t list) list;
}

exception Verification_failed of Diagnostic.t

let classic_opts f =
  let rec go budget =
    if budget > 0 then begin
      let changed = ref false in
      if Mac_opt.Simplify.run f then changed := true;
      if Mac_opt.Copyprop.run f then changed := true;
      if Mac_opt.Cse.run f then changed := true;
      if Mac_opt.Combine.run f then changed := true;
      if Mac_opt.Cleanflow.run f then changed := true;
      if Mac_opt.Dce.run f then changed := true;
      if !changed then go (budget - 1)
    end
  in
  go 10

let coalesce_options cfg =
  match cfg.level with
  | O0 | O1 -> None
  | O2 -> Some { cfg.coalesce with Coalesce.unroll_only = true }
  | O3 ->
    Some
      { cfg.coalesce with Coalesce.unroll_only = false;
        coalesce_loads = true; coalesce_stores = false }
  | O4 ->
    Some
      { cfg.coalesce with Coalesce.unroll_only = false;
        coalesce_loads = true; coalesce_stores = true }

let compile_func cfg (f : Func.t) =
  let diags = ref [] in
  let fail_on_errors ds =
    diags := !diags @ ds;
    match Diagnostic.errors ds with
    | [] -> ()
    | d :: _ -> raise (Verification_failed d)
  in
  (* Every pass must leave a function {!Func.validate} accepts; with
     [verify <> Vnone] it must also satisfy the independent Rtlcheck
     invariants, and the pipeline stops at the first error-severity
     diagnostic, named after the offending pass. *)
  let checkpoint ?machine name =
    (match Func.validate f with
    | Ok () -> ()
    | Error msg ->
      Fmt.failwith "pass %s produced an invalid function %s: %s" name f.name
        msg);
    if cfg.verify <> Vnone then
      fail_on_errors (Mac_verify.Rtlcheck.check_func ?machine ~pass:name f)
  in
  checkpoint "input";
  if cfg.level <> O0 then begin
    classic_opts f;
    checkpoint "classic-opts"
  end;
  if cfg.strength_reduce && cfg.level <> O0 then begin
    (* The paper's EliminateInductionVariables: address computations become
       derived induction pointers (Fig. 1b shape); the second round — after
       the dead index arithmetic has been cleaned away — can retire the
       loop counter by rewriting the back branch to a pointer compare. *)
    ignore (Mac_opt.Strength.run f);
    classic_opts f;
    ignore (Mac_opt.Strength.run f);
    classic_opts f;
    checkpoint "strength-reduce"
  end;
  (* DESIGN.md decision 1 ablation: legalizing narrow references before
     coalescing hides them from the coalescer entirely. *)
  if cfg.legalize_first then begin
    ignore (Mac_opt.Legalize.run f cfg.machine);
    checkpoint ~machine:cfg.machine "legalize-first"
  end;
  let reports =
    match coalesce_options cfg with
    | Some opts -> Coalesce.run f ~machine:cfg.machine opts
    | None -> []
  in
  checkpoint "coalesce";
  (* The independent safety audit must see the coalesced loops before
     legalization rewrites narrow references into wide shapes of its own
     and before cleanup canonicalizes the dispatch code. *)
  if cfg.verify = Vfull then
    fail_on_errors
      (Mac_verify.Audit.run f ~machine:cfg.machine ~reports);
  if cfg.level <> O0 then begin
    classic_opts f;
    checkpoint "cleanup"
  end;
  ignore (Mac_opt.Legalize.run f cfg.machine);
  checkpoint ~machine:cfg.machine "legalize";
  if cfg.level <> O0 then begin
    classic_opts f;
    checkpoint ~machine:cfg.machine "final-cleanup"
  end;
  if cfg.schedule && cfg.level <> O0 then begin
    (* machine-level list scheduling of every block, post-legalization *)
    let cfgv = Mac_cfg.Cfg.build f in
    let body' =
      Array.to_list cfgv.blocks
      |> List.concat_map (fun (b : Mac_cfg.Cfg.block) ->
             Mac_opt.Sched.reorder cfg.machine b.insts)
    in
    Func.set_body f body';
    checkpoint ~machine:cfg.machine "schedule"
  end;
  (match cfg.regalloc with
  | Some num_regs ->
    ignore (Mac_opt.Regalloc.run f ~num_regs);
    checkpoint ~machine:cfg.machine "regalloc"
  | None -> ());
  (reports, !diags)

let compile_funcs cfg funcs =
  let per_func =
    List.map (fun f -> (f.Func.name, compile_func cfg f)) funcs
  in
  {
    funcs;
    reports = List.map (fun (n, (r, _)) -> (n, r)) per_func;
    diags = List.map (fun (n, (_, d)) -> (n, d)) per_func;
  }

let compile_source cfg src = compile_funcs cfg (Mac_minic.Lower.compile src)
