(** The optimizing back end: pass ordering and optimization levels.

    Levels mirror the paper's evaluation columns:
    - [O0]: lowering + legalization only.
    - [O1]: + the classic improvements (constant folding, copy/constant
      propagation, local CSE with redundant-load elimination, dead-code
      elimination), iterated to a fixed point.
    - [O2]: + loop unrolling by the coalescing widening factor {e without}
      coalescing — the paper's baseline ("the loops were unrolled so that
      the effect of memory access coalescing could be isolated").
    - [O3]: + coalescing of loads (Table II/III column 4).
    - [O4]: + coalescing of loads and stores (column 5).

    Pass order is: classic opts, unroll+coalesce, classic cleanup,
    machine legalization, final cleanup. Coalescing runs before
    legalization (DESIGN.md decision 1). *)

open Mac_rtl

type level = O0 | O1 | O2 | O3 | O4

val level_of_string : string -> level option
val level_to_string : level -> string

(** How much of {!Mac_verify} runs between passes: [Vnone] only the cheap
    {!Mac_rtl.Func.validate}; [Vir] the full Rtlcheck well-formedness
    suite after every pass; [Vfull] additionally per-pass translation
    validation ({!Mac_verify.Tvalid} — symbolic block-by-block
    equivalence after every structure-preserving pass, region cut-points
    over the loop restructurers) plus the independent coalescing safety
    audit ({!Mac_verify.Audit}) right after the coalesce pass and the
    schedule audit after software pipelining. *)
type verify_level = Vnone | Vir | Vfull

val verify_level_of_string : string -> verify_level option
(** Accepts ["none"]/["off"], ["ir"], ["full"]. *)

val verify_level_to_string : verify_level -> string

type config = {
  machine : Mac_machine.Machine.t;
  level : level;
  coalesce : Mac_core.Coalesce.options;
      (** consulted at [O2]+ (with [unroll_only]/load/store flags forced
          per level); expose ablation switches here *)
  legalize_first : bool;
      (** ablation of DESIGN.md decision 1: expand narrow references for
          the machine {e before} coalescing, which hides them from the
          coalescer (expected: no coalescing happens) *)
  strength_reduce : bool;
      (** run {!Mac_opt.Strength} (the paper's
          [EliminateInductionVariables]) before coalescing: address
          computations become derived induction pointers and dead loop
          counters are removed *)
  regalloc : int option;
      (** when [Some k], finish with linear-scan register allocation onto
          [k] machine registers (spills go to a simulator-backed stack
          frame); [None] leaves virtual registers, which the simulator
          also executes directly *)
  schedule : bool;
      (** apply {!Mac_opt.Sched.reorder} per block after legalization
          (latency-aware list scheduling as a code-motion pass, not just
          the profitability estimator) *)
  pipeline_sched : bool;
      (** the [-Osched] pass: after legalization (and after the list
          scheduler, whose block reordering must not disturb committed
          kernels), modulo-schedule every simple loop with
          {!Mac_opt.Pipeline_sched} and commit any multi-stage schedule
          as a software-pipelined kernel behind a run-time dispatch. The
          pass declares an empty [preserves] set, is Rtlcheck-validated
          like every other pass, and at [Vfull] its certificates are
          re-verified by the independent {!Mac_verify.Sched_audit}. The
          register-pressure ceiling is fed from [regalloc]'s machine
          register count when allocation is on. *)
  verify : verify_level;
      (** run Rtlcheck (and at [Vfull] the coalescing audit) after every
          pass; the first error-severity diagnostic raises
          {!Verification_failed} naming the pass *)
  facts : (string * Mac_core.Disambig.facts) list;
      (** static disambiguation facts per function name, fed to the
          coalescer's oracle and the audit. {!compile_source} merges in
          facts declared as parameter attributes in the source itself. *)
}

val config :
  ?level:level ->
  ?coalesce:Mac_core.Coalesce.options ->
  ?legalize_first:bool ->
  ?strength_reduce:bool ->
  ?regalloc:int ->
  ?schedule:bool ->
  ?pipeline_sched:bool ->
  ?verify:verify_level ->
  ?facts:(string * Mac_core.Disambig.facts) list ->
  Mac_machine.Machine.t ->
  config
(** Defaults: [O4], {!Mac_core.Coalesce.default}, coalesce-first, no
    strength reduction, no register allocation, no scheduling pass, no
    software pipelining, no verification, no facts. *)

type compiled = {
  funcs : Func.t list;
  reports : (string * Mac_core.Coalesce.loop_report list) list;
      (** per function name *)
  sched_reports :
    (string * (Mac_opt.Pipeline_sched.report * Mac_opt.Pipeline_sched.cert option) list)
      list;
      (** per function name: one report per simple loop the [-Osched]
          pass considered (empty unless {!config.pipeline_sched}), with
          the schedule certificate for every committed loop — the input
          to {!Mac_verify.Sched_audit} and to [mcc --explain-sched] *)
  diags : (string * Mac_verify.Diagnostic.t list) list;
      (** per function name; warnings and infos the verifier collected
          (empty unless {!config.verify} enables it — errors raise
          {!Verification_failed} instead of ending up here) *)
  ams : (string * Mac_dataflow.Analysis.t) list;
      (** per function name: the analysis manager each function was
          compiled under, still holding whatever facts the final passes
          left valid. Post-compile consumers (the static estimator's
          {!Mac_core.Estimate.via}) memoise through it instead of
          creating a fresh manager. *)
  pass_seconds : (string * float) list;
      (** wall-clock seconds per pass name, accumulated across fixpoint
          rounds and functions, sorted by name. Verification (Rtlcheck +
          audit + validate) is accounted under ["verify"]; MiniC lowering
          (only via {!compile_source}) under ["lower"]. *)
  compile_seconds : float;
      (** total wall-clock seconds for the whole compilation (at least
          the sum of [pass_seconds]; the remainder is pipeline glue) *)
  guards_emitted : int;
      (** run-time guards emitted into dispatch blocks, summed over every
          coalesced loop of every function *)
  guards_elided : int;
      (** guards discharged statically by {!Mac_core.Disambig} *)
  elision_reasons : (string * int) list;
      (** elision count per reason string (e.g. ["align:congruence"],
          ["alias:provenance"]), sorted by reason *)
  tvalid_stats : (string * Mac_verify.Tvalid.agg) list;
      (** per pass name, sorted: translation-validation runs, block pairs
          checked, regions carved out, fallbacks recorded and wall-clock
          seconds, accumulated across functions (empty unless
          {!config.verify} is [Vfull]). The seconds also appear under the
          ["tvalid"] key of [pass_seconds]. *)
}

exception Verification_failed of Mac_verify.Diagnostic.t
(** Raised by compilation when a verification layer reports an
    error-severity diagnostic; the diagnostic names the pass. *)

val compile_funcs : config -> Func.t list -> compiled
(** Optimize already-lowered functions in place. *)

val compile_source : config -> string -> compiled
(** Parse, type-check, lower and optimize MiniC source. *)

val classic_opts : Func.t -> unit
(** The O1 fixed-point combination, exposed for tests. *)

val test_intercept : (string -> Func.t -> unit) option ref
(** Test seam: called with the pass name and the function right after
    each validated pass runs and {e before} the translation validator
    compares input and output — a hook that mutates the function here
    simulates a miscompiling pass. While armed, the validator runs even
    for passes reporting no change. Only consulted at [Vfull]. *)

val test_observe :
  (pass:string -> fname:string -> old_f:Func.t -> new_f:Func.t -> unit)
  option
  ref
(** Test seam: called with each (pass, before, after) snapshot pair the
    validator checks — the qcheck mutation adversary captures real pass
    transitions through this. Only consulted at [Vfull]. *)
