(* Compiler build identity. The fingerprint must change whenever compile
   output can change: the semantic version below is bumped by hand on
   any such PR, and the digest folds in the toolchain parameters
   (OCaml version, word size) so rebuilding under a different compiler
   generation also changes it. Everything that must not confuse two
   builds — the serve cache key, the protocol hello, the BENCH headers —
   uses this one string. *)

let version = "0.7.0"

let compiler_fingerprint =
  let seed =
    String.concat "\x00"
      [ "mac"; version; Sys.ocaml_version; string_of_int Sys.word_size ]
  in
  Printf.sprintf "mcc/%s+%s" version
    (String.sub (Digest.to_hex (Digest.string seed)) 0 12)
