(** Compiler build identity.

    Nothing in the toolchain identified a compiler build until the
    compile cache made that dangerous: a cache entry produced by one
    build must never satisfy a request compiled by another whose
    semantics differ. {!compiler_fingerprint} is the single string the
    whole system uses for that — the {!Mac_serve} cache key folds it
    in, the serve protocol hello announces it, the BENCH artifact
    headers record it, and [mcc --version]/[mccd --version] print it. *)

val version : string
(** The human-facing semantic version of the compiler pipeline.
    Bumped whenever a change alters what any (source, machine, level,
    verify) compile produces — new passes, changed pass behavior,
    changed artifact rendering. The CHANGES.md discipline: a PR that
    changes compile output bumps this. *)

val compiler_fingerprint : string
(** [mcc/VERSION+HASH]: {!version} plus a short digest binding in the
    toolchain parameters the emitted code could depend on (OCaml
    compiler version, word size). Two processes report equal
    fingerprints only when they agree on {!version} and were built by
    the same toolchain generation — the property the compile cache,
    the protocol hello and the bench headers all key on. *)
