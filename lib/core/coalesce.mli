(** The memory-access-coalescing driver (paper Fig. 2,
    [CoalesceMemoryAccesses]).

    For every simple innermost loop of the function: find the narrow memory
    references, unroll by the widening factor (keeping the original loop as
    the run-time fallback), partition the unrolled body's references,
    select wide windows, run the hazard analysis, emit run-time alignment
    and alias checks into the dispatch block, and commit the coalesced body
    if the profitability analysis approves it. *)

open Mac_rtl

type options = {
  coalesce_loads : bool;
  coalesce_stores : bool;
  unroll_only : bool;  (** stop after unrolling (the paper's baseline) *)
  runtime_checks : bool;
      (** when false, only statically provable groups are kept — the
          static-only ablation (DESIGN.md decision 3) *)
  respect_profitability : bool;
      (** when true (default), the Fig. 3 gate keeps the cheapest scheduled
          variant (none / loads / loads+stores); when false, apply
          everything the flags ask for regardless of cost — how the
          paper's measured columns behave (the 68030 numbers measure
          slower code, so the transformation was applied there) *)
  profit_mode : Profitability.mode;
  icache_guard : bool;  (** when false, unroll regardless of I-cache fit *)
  remainder_loop : bool;
      (** use the Fig. 5 remainder prologue instead of the divisibility
          bail-out: non-divisible trip counts keep the unrolled/coalesced
          main loop (default false — the paper's emitted code bails) *)
  max_factor : int;
  force_guards : bool;
      (** when true, never consult the static disambiguation oracle: every
          guard is emitted even when provable (the [--force-guards]
          baseline the elision property tests compare against) *)
}

val default : options
(** Loads and stores, run-time checks, schedule-based profitability,
    I-cache guard, factor capped at 8. *)

type status =
  | Coalesced
  | Unrolled_only
  | No_narrow_refs
  | Rejected of string

type loop_report = {
  header : Rtl.label;  (** original header label of the loop *)
  factor : int;
  status : status;
  main_label : Rtl.label option;
      (** header of the unrolled (and possibly coalesced) main loop; [None]
          when the loop was not unrolled. Exposed so an independent auditor
          ({!Mac_verify.Audit}) can re-find the transformed loop. *)
  safe_label : Rtl.label option;
      (** header of the untouched original copy the run-time checks
          dispatch to *)
  load_groups : int;
  store_groups : int;
  stats : Transform.stats option;
  decision : Profitability.decision option;
  check_insts : int;
      (** run-time check instructions added to the dispatch block,
          including the unroller's divisibility test *)
  guards_emitted : int;
      (** alignment/alias guards actually emitted into the dispatch *)
  guards_elided : int;
      (** guards discharged statically by {!Disambig} *)
  elisions : Disambig.elision list;
      (** one certified elision per discharged guard, in emission order —
          {!Mac_verify.Audit} re-verifies every certificate *)
}

val run :
  ?am:Mac_dataflow.Analysis.t ->
  ?cache:Profitability.cache ->
  ?facts:Disambig.facts ->
  Func.t ->
  machine:Mac_machine.Machine.t ->
  options ->
  loop_report list
(** Transform every eligible loop of [f] in place. With [?am], the
    per-candidate CFG/dominator/loop recomputation goes through the
    analysis manager (only mutations — unroll, splice — invalidate it);
    [?cache] memoises the profitability scheduler's pricing across
    variants and loops of the same function/machine. [?facts] (default
    {!Disambig.empty}) feeds the static disambiguation oracle; with no
    facts, or with [options.force_guards], every guard is emitted. *)

val pp_report : Format.formatter -> loop_report -> unit
