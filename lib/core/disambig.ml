open Mac_rtl
module Linform = Mac_opt.Linform
module Induction = Mac_opt.Induction
module Congruence = Mac_dataflow.Congruence
module Cfg = Mac_cfg.Cfg
module Dom = Mac_cfg.Dom
module Loop = Mac_cfg.Loop

(* ------------------------------------------------------------------ *)
(* Facts                                                               *)

type facts = {
  aligns : (Reg.t * int) list;
  allocs : (Reg.t * int * Linform.t) list;
  values : (Reg.t * int64) list;
  nonnegs : Reg.t list;
}

let empty = { aligns = []; allocs = []; values = []; nonnegs = [] }

let no_facts f =
  f.aligns = [] && f.allocs = [] && f.values = [] && f.nonnegs = []

let union a b =
  {
    aligns = a.aligns @ b.aligns;
    allocs = a.allocs @ b.allocs;
    values = a.values @ b.values;
    nonnegs = a.nonnegs @ b.nonnegs;
  }

let pp_facts ppf f =
  let sep () = Format.fprintf ppf "@ " in
  Format.fprintf ppf "@[<hov>";
  List.iter
    (fun (r, k) -> Format.fprintf ppf "align(%a)=2^%d" Reg.pp r k; sep ())
    f.aligns;
  List.iter
    (fun (r, id, size) ->
      Format.fprintf ppf "alloc(%a)=#%d[%a]" Reg.pp r id Linform.pp size;
      sep ())
    f.allocs;
  List.iter
    (fun (r, v) -> Format.fprintf ppf "value(%a)=%Ld" Reg.pp r v; sep ())
    f.values;
  List.iter (fun r -> Format.fprintf ppf "nonneg(%a)" Reg.pp r; sep ())
    f.nonnegs;
  Format.fprintf ppf "@]"

let sym_align_of facts r =
  List.fold_left
    (fun acc (s, k) -> if Reg.equal s r then max acc k else acc)
    0 facts.aligns

let alloc_of facts r =
  List.find_map
    (fun (s, id, size) -> if Reg.equal s r then Some (id, size) else None)
    facts.allocs

let is_nonneg_sym facts r = List.exists (Reg.equal r) facts.nonnegs

(* A linear form over entry values is provably >= 0 when its constant is
   and every term has a non-negative coefficient on a known-non-negative
   symbol. (Terms never carry zero coefficients.) *)
let nonneg_form facts (g : Linform.t) =
  Int64.compare g.Linform.const 0L >= 0
  && List.for_all
       (fun (s, c) ->
         Int64.compare c 0L > 0
         && match s with
            | Linform.Entry r -> is_nonneg_sym facts r
            | Linform.Opaque _ -> false)
       g.Linform.terms

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)

type align_cert = {
  ac_terms : (Linform.sym * int64) list;
  ac_window : int64;
  ac_wide : int;
  ac_claims : (Reg.t * Congruence.value) list;
}

type alias_side = {
  s_terms : (Linform.sym * int64) list;
  s_root : Reg.t;
  s_alloc : int;
  s_off : Linform.t;
  s_lo : Linform.t;
  s_hi : Linform.t;
}

type alias_cert = { ca : alias_side; cb : alias_side }
type cert = Align of align_cert | Alias of alias_cert
type elision = { target : string; reason : string; cert : cert }

let pp_terms ppf terms = Linform.pp ppf { Linform.const = 0L; terms }

let pp_cert ppf = function
  | Align c ->
    Format.fprintf ppf "@[<hov 2>align %a + %Ld mod %d = 0:" pp_terms
      c.ac_terms c.ac_window c.ac_wide;
    List.iter
      (fun (r, v) ->
        Format.fprintf ppf "@ %a@%a" Reg.pp r Congruence.pp_value v)
      c.ac_claims;
    Format.fprintf ppf "@]"
  | Alias c ->
    let side ppf s =
      Format.fprintf ppf "%a in #%d(%a)+[%a, %a)" pp_terms s.s_terms
        s.s_alloc Reg.pp s.s_root Linform.pp
        (Linform.add s.s_off s.s_lo)
        Linform.pp
        (Linform.add s.s_off s.s_hi)
    in
    Format.fprintf ppf "@[<hov 2>noalias: %a@ vs %a@]" side c.ca side c.cb

let pp_elision ppf e =
  Format.fprintf ppf "@[<hov 2>%s (%s):@ %a@]" e.target e.reason pp_cert
    e.cert

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)

type oracle = {
  facts : facts;
  cfg : Cfg.t;
  main_idx : int;
  main_in : Congruence.state;
  dispatch_out : Congruence.state option;
}

let oracle ~facts ~cfg ~main_label =
  match Cfg.block_of_label cfg main_label with
  | None -> None
  | Some main_idx ->
    let sol = Congruence.solve ~consts:facts.values cfg in
    let dispatch_out =
      match
        List.filter (fun p -> p <> main_idx) cfg.Cfg.pred.(main_idx)
      with
      | [ p ] -> Some (Congruence.block_out sol p)
      | _ -> None
    in
    Some
      {
        facts;
        cfg;
        main_idx;
        main_in = Congruence.block_in sol main_idx;
        dispatch_out;
      }

(* --- alignment ------------------------------------------------------ *)

(* The residue proof, shared verbatim between proving and certificate
   replay: the window address  sum_i c_i * r_i + window  is == 0 mod
   2^bits when (a) every term's congruence claim is at least that precise
   ([kmin]), (b) the accumulated per-symbol strides vanish under the
   symbols' alignment facts, and (c) the accumulated constant is 0 mod
   2^bits. [lookup] supplies the congruence claim for each [Entry]
   register — the solver's value when proving, the certificate's claim
   when verifying. *)
let check_residue ~sym_align ~lookup ~terms ~window ~wide_bytes =
  match Width.log2_exact (Int64.of_int wide_bytes) with
  | None -> false
  | Some 0 -> true
  | Some bits ->
    let kmin = ref 64 and const = ref window and ok = ref true in
    let acc : int64 Reg.Tbl.t = Reg.Tbl.create 4 in
    List.iter
      (fun (s, c) ->
        match s with
        | Linform.Opaque _ -> kmin := min !kmin (Congruence.v2 c)
        | Linform.Entry r -> (
          match lookup r with
          | None -> ok := false
          | Some Congruence.Top -> kmin := min !kmin (Congruence.v2 c)
          | Some (Congruence.Lin { sym; stride; off; k }) ->
            kmin := min !kmin (min 64 (k + Congruence.v2 c));
            const := Int64.add !const (Int64.mul c off);
            (match sym with
            | None -> ()
            | Some s ->
              let prev =
                Option.value (Reg.Tbl.find_opt acc s) ~default:0L
              in
              Reg.Tbl.replace acc s
                (Int64.add prev (Int64.mul c stride)))))
      terms;
    let mask = Int64.of_int (wide_bytes - 1) in
    !ok && !kmin >= bits
    && Int64.equal (Int64.logand !const mask) 0L
    && Reg.Tbl.fold
         (fun s coeff ok ->
           ok && Congruence.v2 coeff + sym_align s >= bits)
         acc true

let claims_of o terms =
  List.fold_left
    (fun acc (s, _) ->
      match s with
      | Linform.Opaque _ -> acc
      | Linform.Entry r ->
        if List.exists (fun (r', _) -> Reg.equal r r') acc then acc
        else (r, Congruence.value_of o.main_in r) :: acc)
    [] terms
  |> List.rev

let prove_alignment o ~terms ~window ~wide =
  let claims = claims_of o terms in
  let lookup r =
    List.find_map
      (fun (r', v) -> if Reg.equal r r' then Some v else None)
      claims
  in
  if
    check_residue ~sym_align:(sym_align_of o.facts) ~lookup ~terms ~window
      ~wide_bytes:(Width.bytes wide)
  then
    Some
      { ac_terms = terms; ac_window = window; ac_wide = Width.bytes wide;
        ac_claims = claims }
  else begin
    if Sys.getenv_opt "MAC_DEBUG_DISAMBIG" <> None then
      Format.eprintf "align FAIL window=%Ld wide=%d terms=[%a] claims=[%a]@."
        window (Width.bytes wide)
        (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (s, c) ->
             Format.fprintf ppf "%a*%Ld" Linform.pp_sym s c))
        terms
        (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (r, v) ->
             Format.fprintf ppf "%a=%a" Reg.pp r Congruence.pp_value v))
        claims;
    None
  end

(* --- overlap -------------------------------------------------------- *)

(* Resolve a register's value at the dispatch point into entry-value
   space; only exact (k = 64) congruence values qualify. *)
let resolve_reg dout r =
  match Congruence.value_of dout r with
  | Congruence.Lin { sym; stride; off; k = 64 } ->
    let base = Linform.const off in
    Some
      (match sym with
      | None -> base
      | Some s -> Linform.add base (Linform.mul_const (Linform.entry s) stride))
  | _ -> None

let resolve_form dout (f : Linform.t) =
  List.fold_left
    (fun acc (s, c) ->
      match acc with
      | None -> None
      | Some acc -> (
        match s with
        | Linform.Opaque _ -> None
        | Linform.Entry r -> (
          match resolve_reg dout r with
          | None -> None
          | Some v -> Some (Linform.add acc (Linform.mul_const v c)))))
    (Some (Linform.const f.Linform.const))
    f.Linform.terms

let resolve_operand dout = function
  | Rtl.Imm c -> Some (Linform.const c)
  | Rtl.Reg r -> resolve_reg dout r

let dbg fmt =
  if Sys.getenv_opt "MAC_DEBUG_DISAMBIG" <> None then
    Format.eprintf fmt
  else Format.ifprintf Format.err_formatter fmt

(* One partition's whole-loop footprint, as the symbolic counterpart of
   {!Checks.dynamic_bounds}: the same [dist]/[total]/[lo]/[hi] formulas
   evaluated over entry values instead of emitted as preheader code. The
   footprint must land inside the partition root's allocation. *)
let side_of o ~(trip : Induction.trip) (e : Checks.extent) =
  dbg "side: base=%a adv=%Ld lo=%Ld hi=%Ld trip(step=%Ld off=%Ld)@."
    Linform.pp e.Checks.base e.Checks.advance e.Checks.lo_off e.Checks.hi_off
    trip.iv.step trip.offset;
  match o.dispatch_out with
  | None ->
    dbg "side: no dispatch_out@.";
    None
  | Some dout -> (
    match resolve_form dout e.Checks.base with
    | None ->
      dbg "side: base unresolved@.";
      None
    | Some base -> (
      let roots =
        List.filter_map
          (fun (s, c) ->
            match s with
            | Linform.Entry r -> (
              match alloc_of o.facts r with
              | Some (id, size) -> Some (r, c, id, size)
              | None -> None)
            | Linform.Opaque _ -> None)
          base.Linform.terms
      in
      match roots with
      | [ (root, 1L, id, size) ] -> (
        let off = Linform.sub base (Linform.entry root) in
        let step_abs = Int64.abs trip.iv.step in
        if
          Int64.equal step_abs 0L
          || not (Int64.equal (Int64.rem e.Checks.advance step_abs) 0L)
        then begin
          dbg "side: advance %Ld not multiple of step %Ld@." e.Checks.advance
            step_abs;
          None
        end
        else
          let kq =
            let q = Int64.div e.Checks.advance step_abs in
            if Int64.compare trip.iv.step 0L < 0 then Int64.neg q else q
          in
          match
            (resolve_operand dout trip.bound, resolve_reg dout trip.iv.reg)
          with
          | Some bound_f, Some iv_f ->
            let adjust = Int64.sub trip.offset trip.iv.step in
            let counting_up = Int64.compare trip.iv.step 0L > 0 in
            let dist =
              if counting_up then
                Linform.sub (Linform.sub bound_f iv_f)
                  (Linform.const adjust)
              else
                Linform.add (Linform.sub iv_f bound_f)
                  (Linform.const adjust)
            in
            let total = Linform.mul_const dist (Int64.abs kq) in
            let adv_abs = Int64.abs e.Checks.advance in
            let lo, hi =
              if Int64.compare kq 0L >= 0 then
                ( Linform.const e.Checks.lo_off,
                  Linform.add total
                    (Linform.const (Int64.sub e.Checks.hi_off adv_abs)) )
              else
                ( Linform.sub
                    (Linform.const (Int64.add e.Checks.lo_off adv_abs))
                    total,
                  Linform.const e.Checks.hi_off )
            in
            if
              nonneg_form o.facts (Linform.add off lo)
              && nonneg_form o.facts
                   (Linform.sub size (Linform.add off hi))
            then
              Some
                {
                  s_terms = e.Checks.base.Linform.terms;
                  s_root = root;
                  s_alloc = id;
                  s_off = off;
                  s_lo = lo;
                  s_hi = hi;
                }
            else begin
              dbg "side: bounds fail off=%a lo=%a hi=%a size=%a@."
                Linform.pp off Linform.pp lo Linform.pp hi Linform.pp size;
              None
            end
          | _ ->
            dbg "side: trip operands unresolved@.";
            None)
      | _ ->
        dbg "side: roots<>1 (%d)@." (List.length roots);
        None))

let prove_noalias o ~trip ~a ~b =
  match (side_of o ~trip a, side_of o ~trip b) with
  | Some sa, Some sb when sa.s_alloc <> sb.s_alloc ->
    Some { ca = sa; cb = sb }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)

let ( let* ) = Result.bind
let fail fmt = Format.kasprintf (fun s -> Error s) fmt

let oracle_res ~facts ~cfg ~main_label =
  match oracle ~facts ~cfg ~main_label with
  | Some o -> Ok o
  | None -> fail "main loop %s not found" main_label

let verify_align ~facts ~cfg ~main_label (c : align_cert) =
  let* o = oracle_res ~facts ~cfg ~main_label in
  let* () =
    if Width.log2_exact (Int64.of_int c.ac_wide) = None then
      fail "window width %d is not a power of two" c.ac_wide
    else Ok ()
  in
  (* every claim must be implied by the value the solver recomputes from
     the output RTL *)
  let* () =
    List.fold_left
      (fun acc (r, claim) ->
        let* () = acc in
        let actual = Congruence.value_of o.main_in r in
        if Congruence.implies ~actual ~claim then Ok ()
        else
          fail "claim %a@%a is not implied by the recomputed value %a"
            Reg.pp r Congruence.pp_value claim Congruence.pp_value actual)
      (Ok ()) c.ac_claims
  in
  let lookup r =
    List.find_map
      (fun (r', v) -> if Reg.equal r r' then Some v else None)
      c.ac_claims
  in
  if
    check_residue ~sym_align:(sym_align_of facts) ~lookup ~terms:c.ac_terms
      ~window:c.ac_window ~wide_bytes:c.ac_wide
  then Ok ()
  else
    fail "residue proof for %a + %Ld mod %d does not replay" pp_terms
      c.ac_terms c.ac_window c.ac_wide

let terms_equal t1 t2 =
  Linform.same_terms { Linform.const = 0L; terms = t1 }
    { Linform.const = 0L; terms = t2 }

let side_equal (x : alias_side) (y : alias_side) =
  terms_equal x.s_terms y.s_terms
  && Reg.equal x.s_root y.s_root
  && x.s_alloc = y.s_alloc
  && Linform.equal x.s_off y.s_off
  && Linform.equal x.s_lo y.s_lo
  && Linform.equal x.s_hi y.s_hi

let verify_alias ~facts ~cfg ~main_label (c : alias_cert) =
  let* o = oracle_res ~facts ~cfg ~main_label in
  (* re-derive the unrolled loop's trip structure from its back branch *)
  let dom = Dom.compute cfg in
  let* simple =
    match
      List.find_opt
        (fun (l : Loop.t) -> l.Loop.header = o.main_idx)
        (Loop.natural_loops cfg dom)
    with
    | None -> fail "no natural loop is headed by %s" main_label
    | Some l -> (
      match Loop.simple_of cfg l with
      | Some s -> Ok s
      | None -> fail "loop %s is not simple" main_label)
  in
  let* trip =
    match Induction.trip_of simple with
    | Some t -> Ok t
    | None -> fail "loop %s has no recognisable trip count" main_label
  in
  (* re-derive both partitions' extents from the loop body *)
  let analysis = Partition.analyze simple.Loop.body in
  let extent_for terms =
    match
      List.find_opt
        (fun (p : Partition.t) -> terms_equal p.Partition.terms terms)
        analysis.Partition.partitions
    with
    | None -> fail "no partition matches %a" pp_terms terms
    | Some p -> (
      match Checks.extent_of analysis p with
      | Some e -> Ok e
      | None -> fail "partition %a has no extent" pp_terms terms)
  in
  let* ea = extent_for c.ca.s_terms in
  let* eb = extent_for c.cb.s_terms in
  let* recomputed =
    match prove_noalias o ~trip ~a:ea ~b:eb with
    | Some w -> Ok w
    | None -> fail "overlap proof does not replay from the output RTL"
  in
  if
    (side_equal recomputed.ca c.ca && side_equal recomputed.cb c.cb)
    || (side_equal recomputed.ca c.cb && side_equal recomputed.cb c.ca)
  then Ok ()
  else fail "recomputed overlap witness does not match the certificate"
