(* Static cache-behaviour and cycle estimator. See the interface for the
   model; the short version: walk the CFG over a concrete-constant
   register domain, symbolically execute every loop body three times to
   observe per-iteration deltas, solve trip counts from the exit
   branches in closed form, compress each load/store into an affine
   access stream and fold the streams through Reuse into miss counts and
   through the machine's cost tables into cycles. Work is proportional
   to code size times 3^loop-depth, never to trip counts. *)

open Mac_rtl
module Cfg = Mac_cfg.Cfg
module Dom = Mac_cfg.Dom
module Loop = Mac_cfg.Loop
module Machine = Mac_machine.Machine
module Sched = Mac_opt.Sched
module Linform = Mac_opt.Linform
module Reuse = Mac_dataflow.Reuse
module Analysis = Mac_dataflow.Analysis

(* ------------------------------------------------------------------ *)
(* Concrete-constant environment: registers with a known value are
   present, everything else is unknown. *)

type env = (int, int64) Hashtbl.t

let env_get (env : env) r = Hashtbl.find_opt env (Reg.id r)

let env_set (env : env) r = function
  | Some v -> Hashtbl.replace env (Reg.id r) v
  | None -> Hashtbl.remove env (Reg.id r)

let operand_value env = function
  | Rtl.Imm v -> Some v
  | Rtl.Reg r -> env_get env r

(* ------------------------------------------------------------------ *)
(* Walk-time records. *)

(* One executed memory reference: the resolved address (after the
   unaligned round-down contract), or None when the base register was
   unknown. [a_raw] is the address {e before} that round-down: the
   rounded value is a staircase (constant for [width/stride] iterations,
   then a jump), so stream strides are matched on the raw affine
   address instead — widths divide the line size, so the round-down
   never moves an access to a different cache line. [a_mis] marks a
   tolerated misaligned access (+2 cycles in the engine). *)
type aentry = {
  a_addr : int64 option;
  a_raw : int64 option;
  a_bytes : int;
  a_load : bool;
  a_mis : bool;
}

(* An exit-candidate branch execution inside a loop walk: a conditional
   branch with one successor outside the loop. [c_exit_on] is the truth
   value of [cmp l r] that leaves the loop. *)
type cand = {
  c_uid : int;
  c_cmp : Rtl.cmp;
  c_l : int64 option;
  c_r : int64 option;
  c_exit_on : bool;
  c_out : int;  (* block index the exit side reaches *)
}

(* A summarized loop, per entry. *)
type loopsum = {
  ls_trip : int;
  ls_insts : int;  (* engine-counted instructions, per entry *)
  ls_cycles : int;  (* cycles per entry, excluding d-cache miss penalties *)
  ls_loads : int;  (* dynamic loads per entry *)
  ls_stores : int;
  ls_misses : int;  (* predicted d-cache misses per cold entry *)
  ls_lift : (int * int * float) list;
      (* footprint windows (lo, width, line density), sorted *)
  ls_thrashed : bool;  (* cross-iteration reuse denied somewhere inside *)
  ls_profiles : Reuse.loop_profile list;  (* self first, then descendants *)
}

type ev = Acc of aentry | Lp of loopsum

type trace = {
  mutable t_insts : int;
  mutable t_straight_rev : Rtl.inst list;  (* this region, exec order *)
  mutable t_loads : int;  (* dynamic, inner loops included *)
  mutable t_stores : int;
  mutable t_accs_rev : aentry list;  (* direct accesses of this region *)
  mutable t_loops_rev : loopsum list;
  mutable t_order_rev : ev list;
  mutable t_cands_rev : cand list;
  mutable t_mis : int;  (* tolerated-misaligned direct accesses *)
}

let mk_trace () =
  {
    t_insts = 0;
    t_straight_rev = [];
    t_loads = 0;
    t_stores = 0;
    t_accs_rev = [];
    t_loops_rev = [];
    t_order_rev = [];
    t_cands_rev = [];
    t_mis = 0;
  }

type exit_kind = Ret of int64 option | OutTo of int | Back

exception Leave of exit_kind
exception Out_of_fuel

(* Per-function CFG view, cached across calls. *)
type fninfo = {
  fi_func : Func.t;
  fi_cfg : Cfg.t;
  fi_headers : (int, Loop.t) Hashtbl.t;
}

type ctx = {
  machine : Machine.t;
  line : int;
  csize : int;
  read : (int64 -> int -> int64 option) option;  (* addr, bytes *)
  resolve : string -> Func.t option;
  fns : (string, fninfo) Hashtbl.t;
  overlay : (int64 * int, int64) Hashtbl.t;  (* (addr, bytes) -> value *)
  mutable dirty : (int * int) list;  (* byte intervals of unknown content *)
  mutable fuel : int;
  mutable approx : bool;
}

let fninfo ctx (f : Func.t) =
  match Hashtbl.find_opt ctx.fns f.Func.name with
  | Some fi when fi.fi_func == f -> fi
  | _ ->
    let cfg = Cfg.build f in
    let dom = Dom.compute cfg in
    let headers = Hashtbl.create 4 in
    List.iter
      (fun (l : Loop.t) -> Hashtbl.replace headers l.Loop.header l)
      (Loop.natural_loops cfg dom);
    let fi = { fi_func = f; fi_cfg = cfg; fi_headers = headers } in
    Hashtbl.replace ctx.fns f.Func.name fi;
    fi

(* ------------------------------------------------------------------ *)
(* Memory oracle: an overlay of walked stores over dirty intervals over
   the caller-provided initial memory. Loads with a concrete address hit
   the overlay first (exact address and width), then give up inside any
   region some unwalked iteration may have written, then fall back to
   the initial-memory oracle. *)

let intersects_dirty ctx lo hi =
  List.exists (fun (dlo, dhi) -> lo < dhi && dlo < hi) ctx.dirty

let mark_dirty ctx lo hi = if hi > lo then ctx.dirty <- (lo, hi) :: ctx.dirty

let forget_memory ctx =
  Hashtbl.reset ctx.overlay;
  ctx.dirty <- [ (min_int / 2, max_int / 2) ]

let drop_overlay_in ctx lo hi =
  let doomed =
    Hashtbl.fold
      (fun ((a, w) as k) _ acc ->
        let alo = Int64.to_int a in
        if alo < hi && lo < alo + w then k :: acc else acc)
      ctx.overlay []
  in
  List.iter (Hashtbl.remove ctx.overlay) doomed

let mem_read ctx addr bytes =
  match Hashtbl.find_opt ctx.overlay (addr, bytes) with
  | Some v -> Some v
  | None ->
    let lo = Int64.to_int addr in
    if intersects_dirty ctx lo (lo + bytes) then None
    else (
      match ctx.read with Some f -> f addr bytes | None -> None)

let mem_write ctx addr bytes v =
  match v with
  | Some v -> Hashtbl.replace ctx.overlay (addr, bytes) v
  | None ->
    Hashtbl.remove ctx.overlay (addr, bytes);
    let lo = Int64.to_int addr in
    mark_dirty ctx lo (lo + bytes)

let sext v bytes =
  if bytes >= 8 then v
  else
    let shift = 64 - (8 * bytes) in
    Int64.shift_right (Int64.shift_left v shift) shift

let mask_low v bytes =
  if bytes >= 8 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L (8 * bytes)) 1L)

(* Resolve one memory reference exactly like the engine's
   [resolve_access]: aligned references that land misaligned are
   tolerated at +2 cycles when the machine has an unaligned form of the
   width; unaligned-access instructions silently round the address down
   to the enclosing naturally-aligned word. *)
let access ctx env (m : Rtl.mem) ~is_load =
  let bytes = Width.bytes m.Rtl.width in
  match env_get env m.Rtl.base with
  | None ->
    ctx.approx <- true;
    {
      a_addr = None;
      a_raw = None;
      a_bytes = bytes;
      a_load = is_load;
      a_mis = false;
    }
  | Some base ->
    let addr = Int64.add base m.Rtl.disp in
    let w = Int64.of_int bytes in
    if m.Rtl.aligned then
      let mis =
        (not (Int64.equal (Int64.rem addr w) 0L))
        && List.exists
             (Width.equal m.Rtl.width)
             ctx.machine.Machine.unaligned_widths
      in
      {
        a_addr = Some addr;
        a_raw = Some addr;
        a_bytes = bytes;
        a_load = is_load;
        a_mis = mis;
      }
    else
      {
        a_addr = Some (Int64.mul (Int64.div addr w) w);
        a_raw = Some addr;
        a_bytes = bytes;
        a_load = is_load;
        a_mis = false;
      }

(* ------------------------------------------------------------------ *)
(* Trip-count solving from the exit candidates of three consecutive
   iterations: operand values evolve linearly, so equality exits reduce
   to a divisibility check and relational exits are monotone in the
   iteration number (exponential probe + binary search). *)

let trip_cap = 1 lsl 32

let solve_cand (c1 : cand) (c2 : cand option) (c3 : cand option) =
  match (c1.c_l, c1.c_r) with
  | Some l1, Some r1 -> (
    let deltas =
      match (c2, c3) with
      | Some c2, Some c3 -> (
        match (c2.c_l, c2.c_r, c3.c_l, c3.c_r) with
        | Some l2, Some r2, Some l3, Some r3
          when Int64.equal (Int64.sub l2 l1) (Int64.sub l3 l2)
               && Int64.equal (Int64.sub r2 r1) (Int64.sub r3 r2) ->
          Some (Int64.sub l2 l1, Int64.sub r2 r1)
        | _ -> None)
      | Some c2, None -> (
        match (c2.c_l, c2.c_r) with
        | Some l2, Some r2 -> Some (Int64.sub l2 l1, Int64.sub r2 r1)
        | _ -> None)
      | None, _ -> Some (0L, 0L)
    in
    match deltas with
    | None -> None
    | Some (dl, dr) -> (
      let exits n =
        let l = Int64.add l1 (Int64.mul dl (Int64.of_int (n - 1)))
        and r = Int64.add r1 (Int64.mul dr (Int64.of_int (n - 1))) in
        Rtl.eval_cmp c1.c_cmp l r = c1.c_exit_on
      in
      let eq_exit =
        (* Some true: exit exactly when l = r; Some false: when l <> r *)
        match (c1.c_cmp, c1.c_exit_on) with
        | Rtl.Eq, true | Rtl.Ne, false -> Some true
        | Rtl.Ne, true | Rtl.Eq, false -> Some false
        | _ -> None
      in
      match eq_exit with
      | Some on_equal ->
        let d0 = Int64.sub l1 r1 and dd = Int64.sub dl dr in
        if on_equal then
          if Int64.equal dd 0L then
            if Int64.equal d0 0L then Some 1 else None
          else if Int64.equal (Int64.rem d0 dd) 0L then begin
            let n = Int64.add 1L (Int64.neg (Int64.div d0 dd)) in
            if
              Int64.compare n 1L >= 0
              && Int64.compare n (Int64.of_int trip_cap) <= 0
            then Some (Int64.to_int n)
            else None
          end
          else None
        else if not (Int64.equal d0 0L) then Some 1
        else if Int64.equal dd 0L then None
        else Some 2
      | None ->
        if exits 1 then Some 1
        else begin
          let rec probe hi =
            if hi > trip_cap then None
            else if exits hi then begin
              let rec bin lo hi =
                (* invariant: not (exits lo), exits hi *)
                if hi - lo <= 1 then hi
                else
                  let mid = lo + ((hi - lo) / 2) in
                  if exits mid then bin lo mid else bin mid hi
              in
              Some (bin (hi / 2) hi)
            end
            else probe (hi * 2)
          in
          probe 2
        end))
  | _ -> None

(* Match the candidate records of the three passes by branch uid and
   solve each; the loop exits through the branch with the smallest
   solution. *)
let solve_trip t1 t2 t3 =
  let by_uid (tr : trace) uid =
    List.find_opt (fun c -> c.c_uid = uid) (List.rev tr.t_cands_rev)
  in
  List.fold_left
    (fun best c ->
      match solve_cand c (by_uid t2 c.c_uid) (by_uid t3 c.c_uid) with
      | Some n -> (
        match best with
        | Some (bn, _) when bn <= n -> best
        | _ -> Some (n, c.c_out))
      | None -> best)
    None
    (List.rev t1.t_cands_rev)

(* ------------------------------------------------------------------ *)
(* The walker. Mutates [env] and [tr]. [within] restricts the walk to a
   loop's block set; transferring to [stop_header] completes one
   iteration. Raw control transfers go through [resume], which applies
   the region rules and summarizes inner loops. *)

let rec walk ctx fi env tr ~depth ~within ~stop_header cur =
  let cfg = fi.fi_cfg in
  if cur < 0 || cur >= Array.length cfg.Cfg.blocks then Ret None
  else begin
    let b = cfg.Cfg.blocks.(cur) in
    let e =
      try
        List.iter
          (fun (inst : Rtl.inst) ->
            ctx.fuel <- ctx.fuel - 1;
            if ctx.fuel <= 0 then raise Out_of_fuel;
            tr.t_insts <- tr.t_insts + 1;
            let k = inst.Rtl.kind in
            let straight () =
              tr.t_straight_rev <- inst :: tr.t_straight_rev
            in
            match k with
            | Rtl.Label _ -> ()
            | Rtl.Nop -> straight ()
            | Rtl.Move (d, op) ->
              straight ();
              env_set env d (operand_value env op)
            | Rtl.Binop (op, d, l, r) ->
              straight ();
              let v =
                match (operand_value env l, operand_value env r) with
                | Some a, Some b -> (
                  try Some (Rtl.eval_binop op a b)
                  with Rtl.Division_by_zero -> None)
                | _ -> None
              in
              env_set env d v
            | Rtl.Unop (op, d, x) ->
              straight ();
              env_set env d
                (Option.map (Rtl.eval_unop op) (operand_value env x))
            | Rtl.Extract { dst; src; pos; width; sign } ->
              straight ();
              let v =
                match (env_get env src, operand_value env pos) with
                | Some s, Some p ->
                  Some
                    (Rtl.extract_bytes s ~pos:(Int64.to_int p) ~width ~sign)
                | _ -> None
              in
              env_set env dst v
            | Rtl.Insert { dst; src; pos; width } ->
              straight ();
              let v =
                match
                  ( env_get env dst,
                    operand_value env src,
                    operand_value env pos )
                with
                | Some d, Some s, Some p ->
                  Some
                    (Rtl.insert_bytes d ~src:s ~pos:(Int64.to_int p) ~width)
                | _ -> None
              in
              env_set env dst v
            | Rtl.Load { dst; src; sign } ->
              straight ();
              tr.t_loads <- tr.t_loads + 1;
              let a = access ctx env src ~is_load:true in
              tr.t_accs_rev <- a :: tr.t_accs_rev;
              tr.t_order_rev <- Acc a :: tr.t_order_rev;
              if a.a_mis then tr.t_mis <- tr.t_mis + 1;
              let v =
                match a.a_addr with
                | None -> None
                | Some addr -> (
                  match mem_read ctx addr a.a_bytes with
                  | None -> None
                  | Some raw -> (
                    match sign with
                    | Rtl.Signed -> Some (sext raw a.a_bytes)
                    | Rtl.Unsigned -> Some raw))
              in
              env_set env dst v
            | Rtl.Store { src; dst } ->
              straight ();
              tr.t_stores <- tr.t_stores + 1;
              let a = access ctx env dst ~is_load:false in
              tr.t_accs_rev <- a :: tr.t_accs_rev;
              tr.t_order_rev <- Acc a :: tr.t_order_rev;
              if a.a_mis then tr.t_mis <- tr.t_mis + 1;
              (match a.a_addr with
              | Some addr ->
                let v =
                  Option.map
                    (fun v -> mask_low v a.a_bytes)
                    (operand_value env src)
                in
                mem_write ctx addr a.a_bytes v
              | None ->
                (* a store to an unknown address could be anywhere *)
                ctx.approx <- true;
                forget_memory ctx)
            | Rtl.Call { dst; func; args } ->
              straight ();
              let ret = do_call ctx env tr ~depth func args in
              Option.iter (fun d -> env_set env d ret) dst
            | Rtl.Jump l -> (
              straight ();
              match Cfg.block_of_label cfg l with
              | Some b -> raise (Leave (OutTo b))
              | None -> raise (Leave (Ret None)))
            | Rtl.Branch { cmp; l; r; target } -> (
              straight ();
              let taken_blk = Cfg.block_of_label cfg target in
              let fall_blk = cur + 1 in
              let lv = operand_value env l
              and rv = operand_value env r in
              (match (within, taken_blk) with
              | Some blocks, Some tb ->
                let taken_in = Loop.IntSet.mem tb blocks in
                let fall_in = Loop.IntSet.mem fall_blk blocks in
                if taken_in <> fall_in then
                  tr.t_cands_rev <-
                    {
                      c_uid = inst.Rtl.uid;
                      c_cmp = cmp;
                      c_l = lv;
                      c_r = rv;
                      c_exit_on = not taken_in;
                      c_out = (if taken_in then fall_blk else tb);
                    }
                    :: tr.t_cands_rev
              | _ -> ());
              match (lv, rv) with
              | Some a, Some b ->
                if Rtl.eval_cmp cmp a b then (
                  match taken_blk with
                  | Some tb -> raise (Leave (OutTo tb))
                  | None -> raise (Leave (Ret None)))
                else raise (Leave (OutTo fall_blk))
              | _ -> (
                (* unknown condition: prefer the successor that stays in
                   the region — a data-dependent break is assumed not
                   taken; trip counts come from the counted exits *)
                ctx.approx <- true;
                match (within, taken_blk) with
                | Some blocks, Some tb
                  when (not (Loop.IntSet.mem fall_blk blocks))
                       && Loop.IntSet.mem tb blocks ->
                  raise (Leave (OutTo tb))
                | _ -> raise (Leave (OutTo fall_blk))))
            | Rtl.Ret op ->
              straight ();
              raise (Leave (Ret (Option.bind op (operand_value env)))))
          b.Cfg.insts;
        OutTo (cur + 1)
      with Leave e -> e
    in
    resume ctx fi env tr ~depth ~within ~stop_header e
  end

(* Apply the region rules to a raw transfer and continue walking. *)
and resume ctx fi env tr ~depth ~within ~stop_header e =
  match e with
  | Ret _ | Back -> e
  | OutTo b ->
    if stop_header = Some b then Back
    else
      let inside =
        match within with
        | Some blocks -> Loop.IntSet.mem b blocks
        | None -> true
      in
      if not inside then OutTo b
      else (
        match Hashtbl.find_opt fi.fi_headers b with
        | Some loop ->
          resume ctx fi env tr ~depth ~within ~stop_header
            (summarize ctx fi env tr ~depth loop)
        | None -> walk ctx fi env tr ~depth ~within ~stop_header b)

and do_call ctx env tr ~depth func args =
  match ctx.resolve func with
  | None ->
    (* unknown callee: unknown result, may have written anything *)
    ctx.approx <- true;
    forget_memory ctx;
    None
  | Some callee ->
    if depth > 12 then begin
      ctx.approx <- true;
      None
    end
    else begin
      let cfi = fninfo ctx callee in
      let cenv : env = Hashtbl.create 16 in
      List.iteri
        (fun i r ->
          match List.nth_opt args i with
          | Some op -> env_set cenv r (operand_value env op)
          | None -> ())
        callee.Func.params;
      if callee.Func.frame_bytes > 0 then
        Option.iter
          (fun fp ->
            env_set cenv fp
              (Some (Int64.of_int ((1 lsl 40) - ((depth + 1) * 65536)))))
          callee.Func.fp_reg;
      match
        resume ctx cfi cenv tr ~depth:(depth + 1) ~within:None
          ~stop_header:None
          (OutTo (Cfg.entry cfi.fi_cfg))
      with
      | Ret v -> v
      | _ -> None
    end

(* Loop summarization: up to three body walks; a loop that exits during
   a walked pass is exact straight-line code, otherwise the observed
   deltas are extrapolated by the solved trip count. *)
and summarize ctx fi env tr ~depth (loop : Loop.t) =
  let header = loop.Loop.header in
  let pass () =
    let t = mk_trace () in
    let x =
      walk ctx fi env t ~depth ~within:(Some loop.Loop.blocks)
        ~stop_header:(Some header) header
    in
    (t, x)
  in
  let merge t1 =
    tr.t_insts <- tr.t_insts + t1.t_insts;
    tr.t_straight_rev <- t1.t_straight_rev @ tr.t_straight_rev;
    tr.t_loads <- tr.t_loads + t1.t_loads;
    tr.t_stores <- tr.t_stores + t1.t_stores;
    tr.t_accs_rev <- t1.t_accs_rev @ tr.t_accs_rev;
    tr.t_loops_rev <- t1.t_loops_rev @ tr.t_loops_rev;
    tr.t_order_rev <- t1.t_order_rev @ tr.t_order_rev;
    tr.t_mis <- tr.t_mis + t1.t_mis
  in
  let t1, x1 = pass () in
  match x1 with
  | Ret _ | OutTo _ ->
    merge t1;
    x1
  | Back -> (
    let env1 = Hashtbl.copy env in
    let t2, x2 = pass () in
    match x2 with
    | Ret _ | OutTo _ ->
      merge t1;
      merge t2;
      x2
    | Back -> (
      let env2 = Hashtbl.copy env in
      let t3, x3 = pass () in
      match x3 with
      | Ret _ | OutTo _ ->
        merge t1;
        merge t2;
        merge t3;
        x3
      | Back ->
        let env3 = Hashtbl.copy env in
        extrapolate ctx fi env tr loop ~header (t1, env1) (t2, env2)
          (t3, env3)))

(* Three full iterations observed: solve the trip count, extrapolate the
   exit state, build the access streams and fold them into misses and
   cycles. *)
and extrapolate ctx fi env tr loop ~header (t1, env1) (t2, env2) (t3, env3) =
  let machine = ctx.machine in
  let line = ctx.line in
  let trip, exit_out =
    match solve_trip t1 t2 t3 with
    | Some (n, out) -> (max n 4, Some out)
    | None ->
      ctx.approx <- true;
      let out =
        match List.rev t1.t_cands_rev with
        | c :: _ -> Some c.c_out
        | [] ->
          Loop.IntSet.fold
            (fun b acc ->
              match acc with
              | Some _ -> acc
              | None ->
                List.find_opt
                  (fun s -> not (Loop.IntSet.mem s loop.Loop.blocks))
                  fi.fi_cfg.Cfg.succ.(b))
            loop.Loop.blocks None
      in
      (4, out)
  in
  let trip = min trip trip_cap in
  (* exit environment: registers whose per-iteration delta was stable
     across the three passes evolve linearly from iteration 1 *)
  Hashtbl.reset env;
  Hashtbl.iter
    (fun r v3 ->
      match (Hashtbl.find_opt env1 r, Hashtbl.find_opt env2 r) with
      | Some v1, Some v2 ->
        let d12 = Int64.sub v2 v1 and d23 = Int64.sub v3 v2 in
        if Int64.equal d12 d23 then
          Hashtbl.replace env r
            (Int64.add v1 (Int64.mul d12 (Int64.of_int (trip - 1))))
        else ctx.approx <- true
      | _ -> ctx.approx <- true)
    env3;
  (* direct access streams: positional match of the three passes *)
  let a1 = Array.of_list (List.rev t1.t_accs_rev)
  and a2 = Array.of_list (List.rev t2.t_accs_rev)
  and a3 = Array.of_list (List.rev t3.t_accs_rev) in
  let same_shape =
    Array.length a1 = Array.length a2 && Array.length a2 = Array.length a3
  in
  if not same_shape then ctx.approx <- true;
  let synth = ref 0 in
  let fresh_region () =
    incr synth;
    (1 lsl 45) + (!synth * (1 lsl 22))
  in
  let mis_per_iter = ref 0 in
  let mk_direct i (x2 : aentry) =
    if x2.a_mis then incr mis_per_iter;
    let resolved =
      if same_shape then
        match (a1.(i).a_raw, x2.a_raw, a3.(i).a_raw) with
        | Some p1, Some p2, Some p3 ->
          let s12 = Int64.sub p2 p1 and s23 = Int64.sub p3 p2 in
          if not (Int64.equal s12 s23) then ctx.approx <- true;
          Some (Int64.to_int p1, Int64.to_int s23)
        | _, Some p2, Some p3 ->
          let s = Int64.to_int (Int64.sub p3 p2) in
          Some (Int64.to_int p2 - s, s)
        | _ -> None
      else None
    in
    let start, stride =
      match resolved with
      | Some (o, s) -> (o, s)
      | None ->
        (* unknown stream: priced as a fresh line every iteration in its
           own synthetic region *)
        ctx.approx <- true;
        (fresh_region (), line)
    in
    {
      Reuse.start;
      stride;
      width = x2.a_bytes;
      count = trip;
      loads = (if x2.a_load then 1 else 0);
      stores = (if x2.a_load then 0 else 1);
    }
  in
  let direct_accs = Array.to_list (Array.mapi mk_direct a2) in
  (* inner loops: lift each footprint window as an access advancing by
     the window's shift between pass 2 and pass 3 *)
  let l2 = List.rev t2.t_loops_rev and l3 = List.rev t3.t_loops_rev in
  let same_loops =
    List.length (List.rev t1.t_loops_rev) = List.length l2
    && List.length l2 = List.length l3
  in
  if not same_loops then ctx.approx <- true;
  let inner = l3 in
  let lifted_accs =
    List.concat
      (List.mapi
         (fun i (ls3 : loopsum) ->
           let w2 =
             if same_loops then
               Option.map
                 (fun (l : loopsum) -> l.ls_lift)
                 (List.nth_opt l2 i)
             else None
           in
           List.mapi
             (fun j (lo3, w, _) ->
               let stride =
                 match w2 with
                 | Some w2 when List.length w2 = List.length ls3.ls_lift
                   -> (
                   match List.nth_opt w2 j with
                   | Some (lo2, _, _) -> Some (lo3 - lo2)
                   | None -> None)
                 | _ -> None
               in
               match stride with
               | Some s ->
                 {
                   Reuse.start = lo3 - (2 * s);
                   stride = s;
                   width = w;
                   count = trip;
                   loads = 0;
                   stores = 0;
                 }
               | None ->
                 ctx.approx <- true;
                 {
                   Reuse.start = fresh_region ();
                   stride = line;
                   width = w;
                   count = trip;
                   loads = 0;
                   stores = 0;
                 })
             ls3.ls_lift)
         inner)
  in
  let direct_groups = Reuse.group_accesses ~line direct_accs in
  let lifted_groups = Reuse.group_accesses ~line lifted_accs in
  let all_groups = direct_groups @ lifted_groups in
  let bytes_iter =
    List.fold_left
      (fun n g -> n + Reuse.group_bytes_per_iter g)
      0 all_groups
  in
  let inner_thrashed =
    List.exists (fun (ls : loopsum) -> ls.ls_thrashed) inner
  in
  (* the reuse-distance proxy: a line touched this iteration is touched
     again next iteration after one iteration's footprint of traffic —
     if that fits the cache, cross-iteration reuse is credited by
     counting distinct lines over the whole sweep; otherwise the loop
     thrashes and pays per iteration *)
  let merged = bytes_iter <= ctx.csize && not inner_thrashed in
  let misses =
    if merged then
      List.fold_left (fun n g -> n + Reuse.group_lines ~line g) 0 all_groups
    else
      (trip
      * List.fold_left (fun n (ls : loopsum) -> n + ls.ls_misses) 0 inner)
      + List.fold_left
          (fun n g -> n + Reuse.group_lines_cold ~line g)
          0 direct_groups
  in
  (* footprint for the parent: extents of every group, sorted, each with
     the fraction of its extent's lines the sweep actually touches (a
     line-multiple stride leaves gaps that must not earn reuse credit) *)
  let lift =
    List.sort compare
      (List.map
         (fun g ->
           let lo, hi = Reuse.group_extent g in
           let w = max 0 (hi - lo) in
           let extent_lines =
             max 1 (((lo + w + line - 1) / line) - (lo / line))
           in
           let density =
             Float.min 1.0
               (float_of_int (Reuse.group_lines ~line g)
               /. float_of_int extent_lines)
           in
           (lo, w, density))
         all_groups)
  in
  (* cycles per entry: first iteration priced in order from cold stall
     state, then the warmed steady-state marginal (seq(body@body) -
     seq(body) carries the loop-carried stalls), plus the inner loops
     and the engine's +2 misalignment tolerance *)
  let straight = List.rev t3.t_straight_rev in
  let first = Sched.sequential_cycles machine straight in
  let steady =
    Sched.sequential_cycles machine (straight @ straight) - first
  in
  let inner_cycles =
    List.fold_left (fun n (ls : loopsum) -> n + ls.ls_cycles) 0 inner
  in
  let cycles =
    first
    + ((trip - 1) * max 0 steady)
    + (trip * inner_cycles)
    + (trip * 2 * !mis_per_iter)
  in
  (* after the whole sweep, stored regions hold values the walked passes
     did not compute: stop trusting remembered contents there *)
  List.iter
    (fun (g : Reuse.group) ->
      if g.Reuse.gstores > 0 then begin
        let lo, hi = Reuse.group_extent g in
        mark_dirty ctx lo hi;
        if g.Reuse.gstride = 0 then drop_overlay_in ctx lo hi
      end)
    direct_groups;
  let label =
    match fi.fi_cfg.Cfg.blocks.(header).Cfg.label with
    | Some l -> l
    | None -> Printf.sprintf "%s#%d" fi.fi_func.Func.name header
  in
  let refs =
    List.map
      (fun (a : Reuse.access) ->
        {
          Reuse.r_start = a.Reuse.start;
          r_stride = a.Reuse.stride;
          r_width = a.Reuse.width;
          r_count = a.Reuse.count;
          r_loads = a.Reuse.loads;
          r_stores = a.Reuse.stores;
          r_klass = Reuse.classify ~line a;
          r_lines =
            Reuse.sweep_lines ~line ~stride:a.Reuse.stride ~count:trip
              [ (a.Reuse.start, a.Reuse.width) ];
        })
      direct_accs
  in
  let self_profile =
    {
      Reuse.l_label = label;
      l_depth = 0;
      l_trip = trip;
      l_entries = 1;
      l_refs = refs;
      l_misses = misses;
      l_cycles = cycles;
      l_insts = trip * t3.t_insts;
      l_merged = merged;
      l_approx = not (same_shape && same_loops);
    }
  in
  let child_profiles =
    List.concat_map
      (fun (ls : loopsum) ->
        List.map
          (fun (p : Reuse.loop_profile) ->
            {
              p with
              Reuse.l_depth = p.Reuse.l_depth + 1;
              l_entries = p.Reuse.l_entries * trip;
            })
          ls.ls_profiles)
      inner
  in
  let ls =
    {
      ls_trip = trip;
      ls_insts = trip * t3.t_insts;
      ls_cycles = cycles;
      ls_loads = trip * t3.t_loads;
      ls_stores = trip * t3.t_stores;
      ls_misses = misses;
      ls_lift = lift;
      ls_thrashed = (not merged) || inner_thrashed;
      ls_profiles = self_profile :: child_profiles;
    }
  in
  tr.t_insts <- tr.t_insts + ls.ls_insts;
  tr.t_loads <- tr.t_loads + ls.ls_loads;
  tr.t_stores <- tr.t_stores + ls.ls_stores;
  tr.t_loops_rev <- ls :: tr.t_loops_rev;
  tr.t_order_rev <- Lp ls :: tr.t_order_rev;
  match exit_out with Some b -> OutTo b | None -> Ret None

(* ------------------------------------------------------------------ *)
(* Whole-function estimation: walk from the entry, then fold the
   construct sequence through a FIFO residency model (crediting a loop
   that re-reads what a previous construct left in the cache) and price
   the totals. *)

let default_frame_base = Int64.of_int (1 lsl 40)

let func ?(model_icache = false) ?frame_base ?read ?resolve ~machine ~args
    (f : Func.t) =
  let ctx =
    {
      machine;
      line = machine.Machine.dcache.Machine.line_bytes;
      csize = machine.Machine.dcache.Machine.size_bytes;
      read;
      resolve = (match resolve with Some r -> r | None -> fun _ -> None);
      fns = Hashtbl.create 4;
      overlay = Hashtbl.create 64;
      dirty = [];
      fuel = 2_000_000;
      approx = false;
    }
  in
  let fi = fninfo ctx f in
  let env : env = Hashtbl.create 16 in
  List.iteri
    (fun i r ->
      match List.nth_opt args i with
      | Some v -> env_set env r (Some v)
      | None -> ())
    f.Func.params;
  let fb = Option.value frame_base ~default:default_frame_base in
  if f.Func.frame_bytes > 0 then
    Option.iter (fun fp -> env_set env fp (Some fb)) f.Func.fp_reg;
  let tr = mk_trace () in
  (try
     ignore
       (resume ctx fi env tr ~depth:0 ~within:None ~stop_header:None
          (OutTo (Cfg.entry fi.fi_cfg)))
   with Out_of_fuel -> ctx.approx <- true);
  let line = ctx.line in
  let align lo hi = (lo / line * line, (hi + line - 1) / line * line) in
  let r = Reuse.residency ~size:ctx.csize in
  let misses = ref 0 in
  List.iter
    (function
      | Acc a -> (
        match a.a_addr with
        | Some addr ->
          let lo = Int64.to_int addr in
          let llo, lhi = align lo (lo + a.a_bytes) in
          let resident = Reuse.consume r ~lo:llo ~hi:lhi () in
          misses := !misses + ((lhi - llo) / line) - (resident / line)
        | None -> misses := !misses + 1)
      | Lp ls ->
        if ls.ls_thrashed then begin
          misses := !misses + ls.ls_misses;
          List.iter
            (fun (lo, w, d) ->
              let llo, lhi = align lo (lo + w) in
              ignore (Reuse.consume r ~density:d ~lo:llo ~hi:lhi ()))
            ls.ls_lift
        end
        else begin
          let credit =
            List.fold_left
              (fun c (lo, w, d) ->
                let llo, lhi = align lo (lo + w) in
                c + (Reuse.consume r ~density:d ~lo:llo ~hi:lhi () / line))
              0 ls.ls_lift
          in
          misses := !misses + max 0 (ls.ls_misses - credit)
        end)
    (List.rev tr.t_order_rev);
  let straight = List.rev tr.t_straight_rev in
  let base = Sched.sequential_cycles machine straight in
  let loop_cycles =
    List.fold_left
      (fun n (ls : loopsum) -> n + ls.ls_cycles)
      0 tr.t_loops_rev
  in
  let icache_misses =
    if not model_icache then 0
    else begin
      (* the engine fetches through 32-byte lines at synthetic
         sequential addresses: the cold footprint is the static code
         span; a function larger than the icache also pays capacity
         misses we do not model (flagged approximate) *)
      let code_insts =
        List.length
          (List.filter
             (fun (i : Rtl.inst) ->
               match i.Rtl.kind with
               | Rtl.Label _ | Rtl.Nop -> false
               | _ -> true)
             f.Func.body)
      in
      let code_bytes = code_insts * machine.Machine.bytes_per_inst in
      if code_bytes > machine.Machine.icache_bytes then ctx.approx <- true;
      (code_bytes + 31) / 32
    end
  in
  let cycles =
    base + loop_cycles + (2 * tr.t_mis)
    + (!misses * machine.Machine.dcache.Machine.miss_penalty)
    + (icache_misses * machine.Machine.icache_miss_penalty)
  in
  let profiles =
    List.concat_map
      (function Lp ls -> ls.ls_profiles | Acc _ -> [])
      (List.rev tr.t_order_rev)
  in
  {
    Reuse.s_insts = tr.t_insts;
    s_cycles = cycles;
    s_loads = tr.t_loads;
    s_stores = tr.t_stores;
    s_misses = !misses;
    s_icache_misses = icache_misses;
    s_loops = profiles;
    s_approx = ctx.approx;
  }

let key ~machine ~args =
  String.concat ":"
    (machine.Machine.name :: List.map Int64.to_string args)

let via am ?model_icache ?read ?resolve ~machine ~args () =
  Analysis.reuse am ~key:(key ~machine ~args) ~compute:(fun f ->
      func ?model_icache ?read ?resolve ~machine ~args f)

(* ------------------------------------------------------------------ *)
(* Per-iteration miss cycles of a loop body, from partition strides —
   the term the [Estimate] profitability mode adds on top of the
   schedule latency. No concrete environment here: reference positions
   come from the partitions' relative offsets, each partition in its own
   synthetic region. *)

let horizon = 256

let body_miss_cycles ~machine body =
  let line = machine.Machine.dcache.Machine.line_bytes in
  let pa = Partition.analyze body in
  let synth = ref 0 in
  let accs =
    List.concat_map
      (fun (p : Partition.t) ->
        let adv = Partition.advance pa p in
        let base_off =
          match Partition.offsets p with o :: _ -> o | [] -> 0L
        in
        List.map
          (fun (r : Partition.ref_info) ->
            let width = Width.bytes r.Partition.mem.Rtl.width in
            let is_load =
              match r.Partition.dir with
              | Partition.Dload _ -> true
              | Partition.Dstore _ -> false
            in
            let off =
              Int64.to_int
                (Int64.sub r.Partition.addr.Linform.const base_off)
            in
            match adv with
            | Some s ->
              {
                Reuse.start = (p.Partition.id * (1 lsl 22)) + off;
                stride = Int64.to_int s;
                width;
                count = horizon;
                loads = (if is_load then 1 else 0);
                stores = (if is_load then 0 else 1);
              }
            | None ->
              incr synth;
              {
                Reuse.start = (1 lsl 45) + (!synth * (1 lsl 22));
                stride = line;
                width;
                count = horizon;
                loads = (if is_load then 1 else 0);
                stores = (if is_load then 0 else 1);
              })
          p.Partition.refs)
      pa.Partition.partitions
  in
  let groups = Reuse.group_accesses ~line accs in
  let bytes_iter =
    List.fold_left (fun n g -> n + Reuse.group_bytes_per_iter g) 0 groups
  in
  let misses =
    if bytes_iter <= machine.Machine.dcache.Machine.size_bytes then
      List.fold_left (fun n g -> n + Reuse.group_lines ~line g) 0 groups
    else
      List.fold_left (fun n g -> n + Reuse.group_lines_cold ~line g) 0 groups
  in
  misses * machine.Machine.dcache.Machine.miss_penalty

(* ------------------------------------------------------------------ *)

let pp_summary ~machine ppf (s : Reuse.summary) =
  let open Format in
  fprintf ppf
    "@[<v>predicted on %s: %d insts, %d cycles, %d loads, %d stores, %d \
     dcache misses%s%s@,"
    machine.Machine.name s.Reuse.s_insts s.Reuse.s_cycles s.Reuse.s_loads
    s.Reuse.s_stores s.Reuse.s_misses
    (if s.Reuse.s_icache_misses > 0 then
       Printf.sprintf ", %d icache misses" s.Reuse.s_icache_misses
     else "")
    (if s.Reuse.s_approx then " (approximate)" else "");
  List.iter
    (fun (l : Reuse.loop_profile) ->
      fprintf ppf "%s loop %s: %d iters x %d entries, %d insts, %d misses, \
                   %d cycles per entry%s%s@,"
        (String.make (2 * (l.Reuse.l_depth + 1)) ' ')
        l.Reuse.l_label l.Reuse.l_trip l.Reuse.l_entries l.Reuse.l_insts
        l.Reuse.l_misses l.Reuse.l_cycles
        (if l.Reuse.l_merged then "" else " [thrash]")
        (if l.Reuse.l_approx then " [approx]" else "");
      List.iter
        (fun (r : Reuse.ref_profile) ->
          fprintf ppf "%s %s stride=%+d width=%d %s: %d lines@,"
            (String.make ((2 * (l.Reuse.l_depth + 1)) + 2) ' ')
            (if r.Reuse.r_loads > 0 then "load" else "store")
            r.Reuse.r_stride r.Reuse.r_width
            (Reuse.klass_to_string r.Reuse.r_klass)
            r.Reuse.r_lines)
        l.Reuse.l_refs)
    s.Reuse.s_loops;
  fprintf ppf "@]"
