open Mac_rtl
module Linform = Mac_opt.Linform

let materialize = Linform.materialize

type memo = ((Linform.sym * int64) list, Rtl.operand) Hashtbl.t

let create_memo () : memo = Hashtbl.create 8

(* Materialize a linear form, sharing the symbolic part: within one
   dispatch sequence the same term list (an array base, typically) is
   evaluated once and later checks reuse the register. Sound because the
   whole sequence is straight-line code in one block, so the first
   materialization dominates every reuse. *)
let materialize_base ?memo f (form : Linform.t) =
  let with_const op =
    if Int64.equal form.Linform.const 0L then Some ([], op)
    else
      let r = Func.fresh_reg f in
      Some ([ Rtl.Binop (Rtl.Add, r, op, Rtl.Imm form.Linform.const) ], Rtl.Reg r)
  in
  match form.Linform.terms with
  | [] -> Some ([], Rtl.Imm form.Linform.const)
  | terms -> (
    let cached =
      match memo with None -> None | Some m -> Hashtbl.find_opt m terms
    in
    match cached with
    | Some op -> with_const op
    | None -> (
      match materialize f { Linform.const = 0L; terms } with
      | None -> None
      | Some (code, op) ->
        Option.iter (fun m -> Hashtbl.replace m terms op) memo;
        Option.map (fun (more, op') -> (code @ more, op')) (with_const op)))

let alignment_check ?memo f ~safe_label ~addr ~wide =
  match materialize_base ?memo f addr with
  | None -> None
  | Some (code, addr_op) ->
    let mask = Int64.of_int (Width.bytes wide - 1) in
    if Int64.equal mask 0L then Some []
    else
      let low = Func.fresh_reg f in
      Some
        (code
        @ [
            Rtl.Binop (Rtl.And, low, addr_op, Rtl.Imm mask);
            Rtl.Branch
              { cmp = Rtl.Ne; l = Rtl.Reg low; r = Rtl.Imm 0L;
                target = safe_label };
          ])

type extent = {
  base : Linform.t;
  advance : int64;
  lo_off : int64;
  hi_off : int64;
}

let extent_of (analysis : Partition.analysis) (p : Partition.t) =
  match Partition.advance analysis p with
  | None -> None
  | Some _ when p.refs = [] -> None
  | Some advance ->
    let base = { Linform.const = 0L; terms = p.terms } in
    let all_entry =
      List.for_all
        (fun (s, _) -> match s with Linform.Entry _ -> true | _ -> false)
        p.terms
    in
    if not all_entry then None
    else
      let lo_off, hi_off =
        List.fold_left
          (fun (lo, hi) (r : Partition.ref_info) ->
            let l = r.addr.Linform.const in
            let h = Int64.add l (Int64.of_int (Width.bytes r.mem.width)) in
            (Int64.min lo l, Int64.max hi h))
          (Int64.max_int, Int64.min_int)
          p.refs
      in
      Some { base; advance; lo_off; hi_off }

(* The dynamic [lo, hi) bounds of an extent: base evaluated at dispatch,
   plus the static offsets, plus the whole-loop movement (distance * k) on
   the moving end. Produces (code, lo_operand, hi_operand). *)
let dynamic_bounds ?memo f ~(trip : Mac_opt.Induction.trip) (e : extent) =
  let step_abs = Int64.abs trip.iv.step in
  if not (Int64.equal (Int64.rem e.advance step_abs) 0L) then None
  else
    let k =
      (* advance per unit of distance; the sign accounts for a
         down-counting iv moving addresses the other way. *)
      let q = Int64.div e.advance step_abs in
      if Int64.compare trip.iv.step 0L < 0 then Int64.neg q else q
    in
    match materialize_base ?memo f e.base with
    | None -> None
    | Some (base_code, base_op) ->
      let counting_up = Int64.compare trip.iv.step 0L > 0 in
      let dist = Func.fresh_reg f in
      (* [T * |step|] — see the trip-count derivation in Mac_opt.Unroll. *)
      let adjust = Int64.sub trip.offset trip.iv.step in
      let dist_code =
        (if counting_up then
           [ Rtl.Binop (Rtl.Sub, dist, trip.bound, Rtl.Reg trip.iv.reg) ]
         else [ Rtl.Binop (Rtl.Sub, dist, Rtl.Reg trip.iv.reg, trip.bound) ])
        @
        if Int64.equal adjust 0L then []
        else if counting_up then
          [ Rtl.Binop (Rtl.Sub, dist, Rtl.Reg dist, Rtl.Imm adjust) ]
        else [ Rtl.Binop (Rtl.Add, dist, Rtl.Reg dist, Rtl.Imm adjust) ]
      in
      let total = Func.fresh_reg f in
      let total_code =
        match Width.log2_exact (Int64.abs k) with
        | _ when Int64.equal k 0L -> [ Rtl.Move (total, Rtl.Imm 0L) ]
        | Some sh ->
          [ Rtl.Binop (Rtl.Shl, total, Rtl.Reg dist, Rtl.Imm (Int64.of_int sh)) ]
        | None ->
          [ Rtl.Binop (Rtl.Mul, total, Rtl.Reg dist, Rtl.Imm (Int64.abs k)) ]
      in
      let lo = Func.fresh_reg f and hi = Func.fresh_reg f in
      (* The last iteration starts [|advance| * (T - 1)] away from the
         first, so the moving end is offset by [total - |advance|] — the
         correction without which adjacent buffers would falsely appear to
         overlap. *)
      let adv_abs = Int64.abs e.advance in
      let bounds_code =
        if Int64.compare k 0L >= 0 then
          [
            Rtl.Binop (Rtl.Add, lo, base_op, Rtl.Imm e.lo_off);
            Rtl.Binop
              (Rtl.Add, hi, base_op, Rtl.Imm (Int64.sub e.hi_off adv_abs));
            Rtl.Binop (Rtl.Add, hi, Rtl.Reg hi, Rtl.Reg total);
          ]
        else
          [
            Rtl.Binop
              (Rtl.Add, lo, base_op, Rtl.Imm (Int64.add e.lo_off adv_abs));
            Rtl.Binop (Rtl.Sub, lo, Rtl.Reg lo, Rtl.Reg total);
            Rtl.Binop (Rtl.Add, hi, base_op, Rtl.Imm e.hi_off);
          ]
      in
      Some
        ( base_code @ dist_code @ total_code @ bounds_code,
          Rtl.Reg lo,
          Rtl.Reg hi )

let alias_check ?memo f ~safe_label ~trip ~a ~b =
  match (dynamic_bounds ?memo f ~trip a, dynamic_bounds ?memo f ~trip b) with
  | Some (code_a, lo_a, hi_a), Some (code_b, lo_b, hi_b) ->
    let no_overlap = Func.fresh_label ~hint:"Lnoalias" f in
    Some
      (code_a @ code_b
      @ [
          (* overlap iff lo_a < hi_b && lo_b < hi_a *)
          Rtl.Branch
            { cmp = Rtl.Geu; l = lo_a; r = hi_b; target = no_overlap };
          Rtl.Branch
            { cmp = Rtl.Ltu; l = lo_b; r = hi_a; target = safe_label };
          Rtl.Label no_overlap;
        ])
  | _ -> None
