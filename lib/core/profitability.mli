(** Profitability analysis (paper Fig. 3).

    The candidate (coalesced) loop body is kept only if it is statically
    cheaper than the original. Both versions are first legalized for the
    target — essential on the Alpha, where the "cheap" narrow references of
    the original body actually cost an unaligned quadword load plus an
    extract each — and then priced, either by latency-aware list
    scheduling (the paper's method), by a naive in-order cost sum (the
    [`CostSum] ablation of DESIGN.md decision 2), or by the schedule
    {e plus} the reuse model's predicted steady-state d-cache miss
    cycles ([Estimate], DESIGN.md §13) — the sharper oracle for machines
    whose schedule-only savings are negative but whose cache behaviour
    still differs.

    The fourth mode, [Pipelined], prices each version by its
    steady-state initiation interval under software pipelining
    ({!Mac_opt.Pipeline_sched.steady_ii}): the cycles one iteration
    costs once the [-Osched] pass has overlapped the body's long-latency
    chains across iterations, plus the back branch's issue cost. It is
    never worse than the [Schedule] price of the same body, and is the
    honest oracle when the pipeliner runs — a one-shot block schedule
    cannot overlap a coalesced body's insert/extract chains across
    iterations, which is exactly why the mc88100/mc68030 O3/O4 cells
    report negative savings under [Schedule]. *)

open Mac_rtl

type mode = Schedule | CostSum | Estimate | Pipelined

type decision = {
  before_cycles : int;
  after_cycles : int;
  profitable : bool;
}

type cache
(** Memoised body prices keyed by the body's instruction fingerprint (its
    kind list) and pricing mode. A cache is valid for one machine only —
    create one per (function, machine) compilation and share it across
    that compilation's pricing calls. *)

val create_cache : unit -> cache

val analyze :
  ?cache:cache ->
  Func.t ->
  machine:Mac_machine.Machine.t ->
  mode:mode ->
  before:Rtl.inst list ->
  after:Rtl.inst list ->
  decision

val pp_decision : Format.formatter -> decision -> unit
