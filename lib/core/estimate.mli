(** Static cache-behaviour and cycle estimator — no simulation.

    Given a compiled function and the concrete entry arguments a
    benchmark instance would pass, the estimator walks the control-flow
    graph once per loop-nest level (never once per iteration): straight
    line code is abstractly executed over a concrete-constant domain,
    every loop body is symbolically executed two or three times to
    observe the per-iteration deltas of its induction state, trip counts
    are solved in closed form from the exit branches, and each
    load/store becomes an affine access stream [(start, stride, width,
    trip)]. The streams are folded through {!Mac_dataflow.Reuse} —
    self-temporal/self-spatial/group reuse, capacity-gated merging
    across loop levels, FIFO residency between siblings — into predicted
    d-cache miss counts, and through the machine's cost tables
    ({!Mac_opt.Sched.sequential_cycles}, which mirrors the simulator's
    in-order stall rules) into predicted cycles. Work is proportional to
    code size times loop depth, so a cell that takes seconds to simulate
    is estimated in well under a millisecond.

    The tolerance contract against the simulator (conflict misses in the
    direct-mapped cache are not modelled, data-dependent trip counts are
    assumed maximal, misalignment penalties are sampled at the first
    iteration) is stated in DESIGN.md §13 and enforced by
    test/test_estimate.ml. *)

open Mac_rtl
module Reuse = Mac_dataflow.Reuse

val func :
  ?model_icache:bool ->
  ?frame_base:int64 ->
  ?read:(int64 -> int -> int64 option) ->
  ?resolve:(string -> Func.t option) ->
  machine:Mac_machine.Machine.t ->
  args:int64 list ->
  Func.t ->
  Reuse.summary
(** Estimate one function entered with [args] bound positionally to its
    parameters. [read addr bytes] is an oracle for the {e initial}
    memory image (the benchmark's prepared buffers), returning the
    zero-extended little-endian value — without it, loaded values are
    unknown, which still estimates plain array kernels but loses
    pointer-chasing ones. [resolve] maps callee names to bodies so calls
    are walked inline (unresolved calls make the result approximate).
    [frame_base] is the synthetic frame-pointer value bound when the
    function was register-allocated (spill traffic is then estimated
    against that region); it defaults to an address far from any
    workload buffer. With [model_icache] the simulator's
    instruction-fetch model (32-byte lines) is approximated by the cold
    code footprint. *)

val key : machine:Mac_machine.Machine.t -> args:int64 list -> string
(** The memo key {!via} stores summaries under: machine name plus the
    argument vector (the summary depends on both). *)

val via :
  Mac_dataflow.Analysis.t ->
  ?model_icache:bool ->
  ?read:(int64 -> int -> int64 option) ->
  ?resolve:(string -> Func.t option) ->
  machine:Mac_machine.Machine.t ->
  args:int64 list ->
  unit ->
  Reuse.summary
(** {!func} memoised through the analysis manager's [Reuse] slot — the
    profile is recomputed only when a pass invalidated it. *)

val horizon : int
(** The fixed iteration horizon {!body_miss_cycles} is expressed over. *)

val body_miss_cycles : machine:Mac_machine.Machine.t -> Rtl.inst list -> int
(** Steady-state d-cache miss cycles one iteration of a (single-block)
    loop body is predicted to pay, from the partition strides of its
    memory references — the term the [`Estimate] profitability mode adds
    on top of the list-schedule latency. Per-iteration rates are
    averaged over a fixed horizon so the result is deterministic. *)

val pp_summary :
  machine:Mac_machine.Machine.t ->
  Format.formatter ->
  Reuse.summary ->
  unit
(** The [mcc --estimate] report: per-loop reference streams (stride,
    width, reuse class, predicted lines) and the function totals. *)
