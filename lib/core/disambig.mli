(** Static disambiguation: the compile-time side of the paper's §2.2.

    The run-time alignment/alias checks of Fig. 5 are explicitly a
    {e fallback} for "when static analysis cannot prove alignment of the
    base address or non-overlap of two arrays". This module is that static
    side: given {!facts} about the function's entry values (parameter
    alignment, allocation provenance and sizes, known constants), it tries
    to {e prove} the property each run-time guard would test — and when it
    succeeds, the coalescer elides the guard.

    Every successful proof is packaged as a machine-checkable certificate.
    {!Mac_verify.Audit} re-verifies each certificate from the output RTL
    (re-solving the congruence analysis, re-deriving the trip count and
    extents), so a wrong elision is a verification failure rather than a
    silent miscompilation.

    Two provers:
    - {b alignment}: a window address [partition terms + window_start] is
      shown [≡ 0 (mod wide)] by combining, per term, the
      {!Mac_dataflow.Congruence} value of the register at the main loop's
      entry (which holds at {e every} iteration) with alignment facts
      about the entry symbols it mentions;
    - {b overlap}: the two partitions' whole-loop [\[lo, hi)] footprints
      (the symbolic counterpart of {!Checks.dynamic_bounds}) are each
      shown to stay inside a distinct allocation, so they cannot
      overlap. *)

open Mac_rtl
module Linform = Mac_opt.Linform
module Congruence = Mac_dataflow.Congruence

(** {1 Facts} *)

type facts = {
  aligns : (Reg.t * int) list;
      (** the entry value of the register is a multiple of [2^k] bytes *)
  allocs : (Reg.t * int * Linform.t) list;
      (** the entry value points to a distinct allocation (provenance id)
          of the given size in bytes — a linear form over entry values *)
  values : (Reg.t * int64) list;
      (** the entry value is this constant (seeds the congruence solver) *)
  nonnegs : Reg.t list;  (** the entry value is non-negative *)
}

val empty : facts
val no_facts : facts -> bool
val union : facts -> facts -> facts
val pp_facts : Format.formatter -> facts -> unit

(** {1 Certificates} *)

type align_cert = {
  ac_terms : (Linform.sym * int64) list;
      (** the partition's symbolic address part (loop-body-entry space) *)
  ac_window : int64;  (** window start offset *)
  ac_wide : int;  (** window width in bytes *)
  ac_claims : (Reg.t * Congruence.value) list;
      (** claimed congruence value, at the main loop's entry, of every
          [Entry] register the terms mention — the verifier checks each
          claim is implied by its own recomputed value, then replays the
          residue proof from the claims alone *)
}

type alias_side = {
  s_terms : (Linform.sym * int64) list;  (** partition terms *)
  s_root : Reg.t;  (** entry register owning the allocation *)
  s_alloc : int;  (** provenance id from the alloc fact *)
  s_off : Linform.t;
      (** partition base minus the allocation base, entry-value space *)
  s_lo : Linform.t;  (** whole-loop low offset relative to the allocation *)
  s_hi : Linform.t;
      (** whole-loop one-past-high offset relative to the allocation *)
}

type alias_cert = { ca : alias_side; cb : alias_side }

type cert = Align of align_cert | Alias of alias_cert

type elision = {
  target : string;  (** human description of the discharged guard *)
  reason : string;  (** e.g. ["align:congruence"], ["alias:provenance"] *)
  cert : cert;
}

val pp_cert : Format.formatter -> cert -> unit
val pp_elision : Format.formatter -> elision -> unit

(** {1 The oracle (proving side)} *)

type oracle
(** Facts plus a solved congruence analysis, bound to one function and one
    coalesced-loop candidate. *)

val oracle :
  facts:facts ->
  cfg:Mac_cfg.Cfg.t ->
  main_label:Rtl.label ->
  oracle option
(** [None] when the main loop's block cannot be found. Alias proofs
    additionally need the loop to have exactly one non-self predecessor
    (the dispatch block); when it does not, only alignment proofs are
    attempted. *)

val prove_alignment :
  oracle ->
  terms:(Linform.sym * int64) list ->
  window:int64 ->
  wide:Width.t ->
  align_cert option

val prove_noalias :
  oracle ->
  trip:Mac_opt.Induction.trip ->
  a:Checks.extent ->
  b:Checks.extent ->
  alias_cert option
(** [trip] must be the trip structure of the {e unrolled} main loop (the
    coalescer's [trip_mega]); the verifier re-derives it independently
    from the loop's back branch. *)

(** {1 Verification (audit side)}

    Both verifiers recompute everything from the function as it now is —
    their own {!Congruence.solve}, their own trip-count and extent
    derivation — and accept the certificate only if every claim is implied
    by the recomputed analysis and the replayed proof goes through. *)

val verify_align :
  facts:facts ->
  cfg:Mac_cfg.Cfg.t ->
  main_label:Rtl.label ->
  align_cert ->
  (unit, string) result

val verify_alias :
  facts:facts ->
  cfg:Mac_cfg.Cfg.t ->
  main_label:Rtl.label ->
  alias_cert ->
  (unit, string) result
(** Re-derives the main loop's trip count and both partitions' extents
    (via {!Mac_core.Partition} and {!Checks.extent_of}), re-runs the
    overlap proof, and requires the recomputed witness to match the
    certificate field for field. *)
