(** Run-time alias and alignment analysis (the paper's §2.2 and Fig. 5).

    When static analysis cannot prove that a wide reference will be
    naturally aligned, or that two partitions (arrays) do not overlap, the
    transformation is still performed — guarded by checks emitted into the
    loop preheader that branch to the original {e safe} loop when a hazard
    is present at run time. The paper reports 10–15 such instructions per
    loop; the [check_insts] field of {!Coalesce.loop_report} counts ours.

    All address computations are materialised from {!Linform} values, which
    are expressed over register values at loop entry — exactly the values
    the registers hold in the dispatch block. *)

open Mac_rtl
module Linform = Mac_opt.Linform

val materialize :
  Func.t -> Linform.t -> (Rtl.kind list * Rtl.operand) option
(** Code evaluating a linear form into an operand at the dispatch point;
    [None] if the form involves opaque symbols. *)

type memo
(** Cache of already-materialised symbolic bases within {e one} dispatch
    sequence (one straight-line region, so the first materialisation
    dominates every reuse). Checks sharing a [memo] evaluate each distinct
    term list once and add their constant displacements to the cached
    register. *)

val create_memo : unit -> memo

val materialize_base :
  ?memo:memo ->
  Func.t ->
  Linform.t ->
  (Rtl.kind list * Rtl.operand) option
(** Like {!materialize}, but consults and populates [memo] for the
    symbolic (constant-free) part of the form. *)

val alignment_check :
  ?memo:memo ->
  Func.t ->
  safe_label:Rtl.label ->
  addr:Linform.t ->
  wide:Width.t ->
  Rtl.kind list option
(** [addr & (bytes wide - 1) <> 0 -> safe_label]. *)

(** One partition's memory footprint over the whole remaining execution of
    the loop, as needed by the overlap test. *)
type extent = {
  base : Linform.t;  (** symbolic part (const 0) of the partition *)
  advance : int64;  (** bytes the partition moves per iteration *)
  lo_off : int64;  (** lowest offset referenced in one iteration *)
  hi_off : int64;  (** one past the highest byte referenced *)
}

val extent_of :
  Partition.analysis -> Partition.t -> extent option
(** [None] when the partition's advance is not a compile-time constant,
    its base involves opaque symbols, or it has no references at all (an
    empty partition has no footprint — not an inverted
    [(max_int, min_int)] one). *)

val alias_check :
  ?memo:memo ->
  Func.t ->
  safe_label:Rtl.label ->
  trip:Mac_opt.Induction.trip ->
  a:extent ->
  b:extent ->
  Rtl.kind list option
(** Code branching to [safe_label] if the two extents overlap at run time:
    [lo_a < hi_b && lo_b < hi_a]. The whole-loop extents are derived from
    the remaining trip distance [(bound - iv)], so each partition's total
    movement is [distance * (advance / |step|)]; [None] when [advance] is
    not a multiple of the step. The extent conservatively includes one
    extra trailing iteration. *)
