module Legalize = Mac_opt.Legalize
module Sched = Mac_opt.Sched
open Mac_rtl

type mode = Schedule | CostSum | Estimate | Pipelined

type decision = {
  before_cycles : int;
  after_cycles : int;
  profitable : bool;
}

(* Pricing a body means legalizing it and building/scheduling the block
   DAG — O(n²) in the body length. The coalescer prices every candidate
   variant of a loop against the same [before] body, so memoising on the
   body's instruction fingerprint (its kind list — uids are freshly
   minted by the legalizer on every call and must not participate) turns
   the per-loop pricing from quadratic re-scheduling into one DAG per
   distinct body. Keys are machine-specific: one cache per (function,
   machine) compilation. *)
type cache = (mode * Rtl.kind list, int) Hashtbl.t

let create_cache () : cache = Hashtbl.create 64

let analyze ?cache f ~machine ~mode ~before ~after =
  let price body =
    let compute () =
      let body = Legalize.expand_body f machine body in
      match mode with
      | Schedule -> Sched.block_cycles machine body
      | CostSum -> Sched.sequential_cycles machine body
      | Estimate ->
        (* schedule latency plus the predicted steady-state d-cache miss
           cycles, both over a fixed horizon of iterations so the cache
           term (a rate, misses per [Estimate.horizon] iterations) and
           the per-iteration schedule term share units *)
        (Sched.block_cycles machine body * Estimate.horizon)
        + Estimate.body_miss_cycles ~machine body
      | Pipelined ->
        (* steady-state initiation interval under software pipelining:
           what each loop version costs per iteration once the [-Osched]
           pass has overlapped its insert/extract chains across
           iterations — never worse than the [Schedule] price *)
        Mac_opt.Pipeline_sched.steady_ii machine body
    in
    match cache with
    | None -> compute ()
    | Some c -> (
      let key = (mode, List.map (fun (i : Rtl.inst) -> i.Rtl.kind) body) in
      match Hashtbl.find_opt c key with
      | Some cycles -> cycles
      | None ->
        let cycles = compute () in
        Hashtbl.add c key cycles;
        cycles)
  in
  let before_cycles = price before in
  let after_cycles = price after in
  { before_cycles; after_cycles; profitable = after_cycles < before_cycles }

let pp_decision ppf d =
  Format.fprintf ppf "before=%d after=%d -> %s" d.before_cycles
    d.after_cycles
    (if d.profitable then "profitable" else "not profitable")
