open Mac_rtl

let log_src = Logs.Src.create "mac.coalesce" ~doc:"memory access coalescing"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Linform = Mac_opt.Linform
module Cfg = Mac_cfg.Cfg
module Dom = Mac_cfg.Dom
module Loop = Mac_cfg.Loop
module Machine = Mac_machine.Machine
module Unroll = Mac_opt.Unroll

type options = {
  coalesce_loads : bool;
  coalesce_stores : bool;
  unroll_only : bool;
  runtime_checks : bool;
  respect_profitability : bool;
  profit_mode : Profitability.mode;
  icache_guard : bool;
  remainder_loop : bool;
  max_factor : int;
  force_guards : bool;
}

let default =
  {
    coalesce_loads = true;
    coalesce_stores = true;
    unroll_only = false;
    runtime_checks = true;
    respect_profitability = true;
    profit_mode = Profitability.Schedule;
    icache_guard = true;
    remainder_loop = false;
    max_factor = 8;
    force_guards = false;
  }

type status =
  | Coalesced
  | Unrolled_only
  | No_narrow_refs
  | Rejected of string

type loop_report = {
  header : Rtl.label;
  factor : int;
  status : status;
  main_label : Rtl.label option;
  safe_label : Rtl.label option;
  load_groups : int;
  store_groups : int;
  stats : Transform.stats option;
  decision : Profitability.decision option;
  check_insts : int;
  guards_emitted : int;
  guards_elided : int;
  elisions : Disambig.elision list;
}

let report ?(factor = 1) ?main_label ?safe_label ?(load_groups = 0)
    ?(store_groups = 0) ?stats ?decision ?(check_insts = 0)
    ?(guards_emitted = 0) ?(guards_elided = 0) ?(elisions = []) header status
    =
  { header; factor; status; main_label; safe_label; load_groups;
    store_groups; stats; decision; check_insts; guards_emitted;
    guards_elided; elisions }

(* Widening factor: widest word over the narrowest coalescable reference
   width in the body. *)
let widen_factor_of_body (m : Machine.t) body ~max_factor =
  let narrowest =
    List.fold_left
      (fun acc (i : Rtl.inst) ->
        match Rtl.mem_of i.kind with
        | Some mem when Width.compare mem.width m.word < 0 -> (
          match acc with
          | Some w when Width.compare w mem.width <= 0 -> acc
          | _ -> Some mem.width)
        | _ -> acc)
      None body
  in
  match narrowest with
  | None -> None
  | Some w -> Some (Stdlib.min (Machine.widen_factor m w) max_factor)

(* Splice [checks] just before the main label and replace the main loop's
   interior with [new_body] (when given). *)
let splice_main f ~main_label ~checks ~new_body =
  let rec go acc = function
    | [] -> List.rev acc
    | ({ Rtl.kind = Rtl.Label l; _ } as label_inst) :: rest
      when String.equal l main_label ->
      let rec split_body body_acc = function
        | [] -> (List.rev body_acc, [])
        | (i : Rtl.inst) :: rest' when Rtl.is_terminator i.kind ->
          (List.rev body_acc, i :: rest')
        | i :: rest' -> split_body (i :: body_acc) rest'
      in
      let old_body, tail = split_body [] rest in
      let body = Option.value new_body ~default:old_body in
      List.rev_append acc (checks @ (label_inst :: body) @ tail)
    | i :: rest -> go (i :: acc) rest
  in
  Func.set_body f (go [] f.body)

let group_is_load (g : Partition.group) =
  match g.members with
  | { Partition.dir = Partition.Dload _; _ } :: _ -> true
  | _ -> false

exception Infeasible of string

(* Run-time checks for the accepted groups: one alignment check per
   partition (windows in one partition share a residue) and one overlap
   check per distinct alias pair. Each guard is first offered to the
   static disambiguation oracle; a proved guard is elided, carrying its
   certificate in the report for the audit to re-verify. Emitted guards
   share a materialization memo — one dispatch sequence is straight-line,
   so a base evaluated for the alignment check is reused by the alias
   bounds. *)
let emit_checks f ~safe_label ~(trip_mega : Mac_opt.Induction.trip)
    ~analysis ~groups ~pairs ~oracle =
  let memo = Checks.create_memo () in
  let emitted = ref 0 and elided = ref 0 in
  let elisions = ref [] in
  let elide target reason cert =
    incr elided;
    elisions := { Disambig.target; reason; cert } :: !elisions
  in
  let alignment_done = Hashtbl.create 4 in
  let align_checks =
    List.concat_map
      (fun (g : Partition.group) ->
        (* one check per (partition, window residue): windows of one
           selection share a residue, but a partition's load and store
           windows may not *)
        let residue =
          Int64.rem g.window_start (Int64.of_int (Width.bytes g.wide))
        in
        let key = (g.partition.id, residue) in
        if Hashtbl.mem alignment_done key then []
        else begin
          Hashtbl.add alignment_done key ();
          let proved =
            match oracle with
            | None -> None
            | Some o ->
              Disambig.prove_alignment o ~terms:g.partition.terms
                ~window:g.window_start ~wide:g.wide
          in
          match proved with
          | Some cert ->
            elide
              (Format.asprintf "align p%d+%Ld mod %d" g.partition.id
                 g.window_start (Width.bytes g.wide))
              "align:congruence" (Disambig.Align cert);
            []
          | None -> (
            incr emitted;
            let addr =
              { Linform.const = g.window_start; terms = g.partition.terms }
            in
            match
              Checks.alignment_check ~memo f ~safe_label ~addr ~wide:g.wide
            with
            | Some kinds -> kinds
            | None -> raise (Infeasible "alignment check not expressible"))
        end)
      groups
  in
  (* The footprint the transformed loop will actually touch: the hull of
     the selected wide windows plus any references left narrow. Wide
     loads read slack bytes the raw references never named, so this can
     be strictly wider than the raw extent. The audit re-derives extents
     from the output RTL, where only the widened shape is visible — a
     static overlap proof must therefore be carried out over this
     footprint or its certificate will not replay. (The dynamic guard
     keeps the raw extent: slack bytes are discarded by the extracts, so
     overlap on them cannot change a loaded value.) *)
  let widen (p : Partition.t) (e : Checks.extent) =
    let wins =
      List.filter
        (fun (g : Partition.group) -> g.partition.Partition.id = p.id)
        groups
    in
    if wins = [] then e
    else begin
      let covered = Hashtbl.create 8 in
      List.iter
        (fun (g : Partition.group) ->
          List.iter
            (fun (r : Partition.ref_info) ->
              Hashtbl.replace covered r.Partition.index ())
            g.members)
        wins;
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (g : Partition.group) ->
            ( Int64.min lo g.window_start,
              Int64.max hi
                (Int64.add g.window_start
                   (Int64.of_int (Width.bytes g.wide))) ))
          (Int64.max_int, Int64.min_int)
          wins
      in
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (r : Partition.ref_info) ->
            if Hashtbl.mem covered r.Partition.index then (lo, hi)
            else
              let l = r.addr.Linform.const in
              let h =
                Int64.add l (Int64.of_int (Width.bytes r.mem.Rtl.width))
              in
              (Int64.min lo l, Int64.max hi h))
          (lo, hi) p.refs
      in
      { e with Checks.lo_off = lo; hi_off = hi }
    end
  in
  let pair_done = Hashtbl.create 4 in
  let alias_checks =
    List.concat_map
      (fun (p : Hazard.alias_pair) ->
        let key =
          ( Stdlib.min p.this.Partition.id p.other.Partition.id,
            Stdlib.max p.this.Partition.id p.other.Partition.id )
        in
        if Hashtbl.mem pair_done key then []
        else begin
          Hashtbl.add pair_done key ();
          match
            ( Checks.extent_of analysis p.this,
              Checks.extent_of analysis p.other )
          with
          | Some a, Some b -> (
            let proved =
              match oracle with
              | None -> None
              | Some o ->
                Disambig.prove_noalias o ~trip:trip_mega
                  ~a:(widen p.this a) ~b:(widen p.other b)
            in
            match proved with
            | Some cert ->
              elide
                (Format.asprintf "alias p%d/p%d" (fst key) (snd key))
                "alias:provenance" (Disambig.Alias cert);
              []
            | None -> (
              incr emitted;
              match
                Checks.alias_check ~memo f ~safe_label ~trip:trip_mega ~a ~b
              with
              | Some kinds -> kinds
              | None -> raise (Infeasible "alias check not expressible")))
          | _ -> raise (Infeasible "alias extents unknown")
        end)
      pairs
  in
  (align_checks @ alias_checks, !emitted, !elided, List.rev !elisions)

(* Returns the report plus the labels of loops this transformation itself
   created (the unrolled main loop and the safe copy), which must not be
   re-processed. *)
let process_loop am cache facts f (m : Machine.t) opts (s : Loop.simple) =
  let header = s.header_label in
  match widen_factor_of_body m s.body ~max_factor:opts.max_factor with
  | None -> (report header No_narrow_refs, [])
  | Some factor when factor < 2 -> (report header No_narrow_refs, [])
  | Some factor -> (
    let machine_for_unroll =
      if opts.icache_guard then m
      else { m with icache_bytes = max_int / 16 }
    in
    (* Guard code this pass will materialize next to the unrolled loop —
       the divisibility dispatch plus, per partition of the rolled body,
       an alignment check and its memoised preheader address computation
       (about six instructions each). The icache-fit test must charge
       for it, or a loop that barely fits the 68030's cache unrolled
       gets coalesced into one that no longer does. *)
    let overhead_insts =
      if opts.unroll_only then 4
      else
        4
        + (6 * List.length (Partition.analyze s.body).Partition.partitions)
    in
    match
      Unroll.run f ~machine:machine_for_unroll ~factor
        ~remainder:opts.remainder_loop ~overhead_insts s
    with
    | None -> (report header (Rejected "loop shape not unrollable") ~factor, [])
    | Some u -> (
      (* The unroller rewrote the body: duplicated blocks, a dispatch
         chain, new labels. Nothing cached survives. *)
      Mac_dataflow.Analysis.invalidate am
        ~preserves:[ Mac_dataflow.Analysis.Tvalid ];
      let created = [ u.Unroll.main_label; u.Unroll.safe_label ] in
      (* Every report below describes the unrolled shape; carry the created
         labels so the safety auditor can re-find both loop versions. *)
      let report =
        report ~main_label:u.Unroll.main_label ~safe_label:u.Unroll.safe_label
      in
      let base_checks = 4 (* the unroller's divisibility dispatch *) in
      if opts.unroll_only then
        (report header Unrolled_only ~factor ~check_insts:base_checks, created)
      else
        (* Re-find the unrolled main loop and analyze it. *)
        let cfg = Mac_dataflow.Analysis.cfg am in
        match Cfg.block_of_label cfg u.main_label with
        | None ->
          (report header (Rejected "internal: main loop lost") ~factor, created)
        | Some main_idx -> (
          let block = cfg.blocks.(main_idx) in
          let interior =
            Cfg.non_label_insts block
            |> List.filter (fun (i : Rtl.inst) ->
                   not (Rtl.is_terminator i.kind))
          in
          let back =
            List.find (fun (i : Rtl.inst) -> Rtl.is_terminator i.kind)
              (List.rev block.insts)
          in
          let analysis = Partition.analyze interior in
          let wide = m.word in
          let wide_bytes = Int64.of_int (Width.bytes wide) in
          let stable p =
            match Partition.advance analysis p with
            | Some adv -> Int64.equal (Int64.rem adv wide_bytes) 0L
            | None -> false
          in
          let candidate_groups =
            List.concat_map
              (fun (p : Partition.t) ->
                if not (stable p) then []
                else
                  let load_groups =
                    if opts.coalesce_loads then
                      Partition.select_load_groups p ~wide
                    else []
                  in
                  (* Store windows of the same partition must share the
                     load windows' start residue: the run-time alignment
                     check can only pass for one residue class. *)
                  let residue =
                    match load_groups with
                    | (g : Partition.group) :: _ ->
                      let w = Int64.of_int (Width.bytes g.wide) in
                      let r = Int64.rem g.window_start w in
                      Some
                        (if Int64.compare r 0L < 0 then Int64.add r w else r)
                    | [] -> None
                  in
                  load_groups
                  @
                  if opts.coalesce_stores then
                    Partition.select_store_groups ?residue p ~wide
                  else [])
              analysis.partitions
          in
          (* Hazard analysis per group; keep each accepted group with the
             run-time alias pairs it requires. *)
          let safe_groups =
            List.filter_map
              (fun g ->
                match Hazard.check ~body:interior ~analysis ~group:g with
                | Hazard.Safe pairs_g ->
                  if (not opts.runtime_checks) && pairs_g <> [] then None
                  else Some (g, pairs_g)
                | Hazard.Unsafe _ -> None)
              candidate_groups
          in
          let safe_groups =
            (* Alignment of the wide window is never provable statically in
               this IR (bases are parameters), so the static-only ablation
               drops every group. *)
            if opts.runtime_checks then safe_groups else []
          in
          if safe_groups = [] then
            (report header Unrolled_only ~factor ~check_insts:base_checks,
             created)
          else
            (* Candidate variants, in the paper's order: loads alone, then
               loads plus stores. With the profitability gate on (Fig. 3),
               keep the cheapest scheduled variant; with it off, apply
               everything the level asked for — which is how the paper's
               measurements behave (the 68030 columns measure *slower*
               code, so the transformation was clearly applied
               unconditionally there). *)
            let load_variant =
              List.filter (fun (g, _) -> group_is_load g) safe_groups
            in
            let price groups_pairs =
              let groups = List.map fst groups_pairs in
              let body_after, stats =
                Transform.apply_groups f ~body:interior ~groups
              in
              let decision =
                Profitability.analyze ?cache f ~machine:m
                  ~mode:opts.profit_mode
                  ~before:(interior @ [ back ])
                  ~after:(body_after @ [ back ])
              in
              (groups_pairs, body_after, stats, decision)
            in
            let variants =
              List.filter (fun gs -> gs <> []) [ load_variant; safe_groups ]
              |> List.sort_uniq Stdlib.compare
              |> List.map price
            in
            let best =
              if opts.respect_profitability then
                List.fold_left
                  (fun acc ((_, _, _, d) as v) ->
                    match acc with
                    | Some (_, _, _, db)
                      when db.Profitability.after_cycles
                           <= d.Profitability.after_cycles ->
                      acc
                    | _ -> if d.Profitability.profitable then Some v else acc)
                  None variants
              else
                (* forced: the largest variant the level asked for *)
                match List.rev variants with
                | v :: _ -> Some v
                | [] -> None
            in
            match best with
            | None ->
              let decision =
                match variants with
                | (_, _, _, d) :: _ -> Some d
                | [] -> None
              in
              ( report header (Rejected "not profitable") ~factor ?decision
                  ~check_insts:base_checks,
                created )
            | Some (chosen, body_after, stats, decision) ->
              let safe_groups = List.map fst chosen in
              let pairs = List.concat_map snd chosen in
              let trip_mega =
                (* One "iteration" of the analysed (unrolled) body covers
                   [factor] original steps; keep the adjusted distance
                   formula exact by moving the step change into the
                   offset. *)
                let step_mega =
                  Int64.mul u.trip.iv.step (Int64.of_int u.factor)
                in
                {
                  u.trip with
                  iv = { u.trip.iv with step = step_mega };
                  offset =
                    Int64.add u.trip.offset
                      (Int64.sub step_mega u.trip.iv.step);
                }
              in
              let oracle =
                if opts.force_guards || Disambig.no_facts facts then None
                else Disambig.oracle ~facts ~cfg ~main_label:u.main_label
              in
              (match
                 emit_checks f ~safe_label:u.safe_label ~trip_mega ~analysis
                   ~groups:safe_groups ~pairs ~oracle
               with
              | exception Infeasible reason ->
                ( report header (Rejected reason) ~factor ~decision
                    ~check_insts:base_checks,
                  created )
              | check_kinds, guards_emitted, guards_elided, elisions ->
                let checks = List.map (Func.inst f) check_kinds in
                splice_main f ~main_label:u.main_label ~checks
                  ~new_body:(Some body_after);
                Mac_dataflow.Analysis.invalidate am
                  ~preserves:[ Mac_dataflow.Analysis.Tvalid ];
                let load_groups =
                  List.length (List.filter group_is_load safe_groups)
                in
                let store_groups =
                  List.length safe_groups - load_groups
                in
                ( report header Coalesced ~factor ~load_groups ~store_groups
                    ~stats ~decision
                    ~check_insts:(base_checks + List.length check_kinds)
                    ~guards_emitted ~guards_elided ~elisions,
                  created )))))

let run ?am ?cache ?(facts = Disambig.empty) f ~machine opts =
  let am =
    match am with Some am -> am | None -> Mac_dataflow.Analysis.create f
  in
  let processed = Hashtbl.create 8 in
  let reports = ref [] in
  let rec iterate () =
    let cfg = Mac_dataflow.Analysis.cfg am in
    let loops = Mac_dataflow.Analysis.loops am in
    let candidate =
      List.find_map
        (fun l ->
          match Loop.simple_of cfg l with
          | Some s when not (Hashtbl.mem processed s.header_label) -> Some s
          | _ -> None)
        loops
    in
    match candidate with
    | None -> ()
    | Some s ->
      Hashtbl.add processed s.header_label ();
      let rep, created = process_loop am cache facts f machine opts s in
      Log.info (fun m ->
          m "%s/%s: %s" f.Func.name rep.header
            (match rep.status with
            | Coalesced -> "coalesced"
            | Unrolled_only -> "unrolled only"
            | No_narrow_refs -> "no narrow references"
            | Rejected r -> "rejected: " ^ r));
      List.iter (fun l -> Hashtbl.replace processed l ()) created;
      reports := rep :: !reports;
      iterate ()
  in
  iterate ();
  List.rev !reports

let pp_status ppf = function
  | Coalesced -> Format.pp_print_string ppf "coalesced"
  | Unrolled_only -> Format.pp_print_string ppf "unrolled-only"
  | No_narrow_refs -> Format.pp_print_string ppf "no-narrow-refs"
  | Rejected r -> Format.fprintf ppf "rejected (%s)" r

let pp_report ppf r =
  Format.fprintf ppf
    "loop %s: %a factor=%d load-groups=%d store-groups=%d checks=%d \
     guards=%d+%d-elided"
    r.header pp_status r.status r.factor r.load_groups r.store_groups
    r.check_insts r.guards_emitted r.guards_elided;
  Option.iter
    (fun d -> Format.fprintf ppf " [%a]" Profitability.pp_decision d)
    r.decision
