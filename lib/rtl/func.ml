type t = {
  name : string;
  mutable params : Reg.t list;
  mutable body : Rtl.inst list;
  mutable next_reg : int;
  mutable next_label : int;
  mutable next_uid : int;
  mutable frame_bytes : int;
  mutable fp_reg : Reg.t option;
}

let create ~name ~params =
  let max_param =
    List.fold_left (fun acc r -> Stdlib.max acc (Reg.id r)) (-1) params
  in
  {
    name;
    params;
    body = [];
    next_reg = max_param + 1;
    next_label = 0;
    next_uid = 0;
    frame_bytes = 0;
    fp_reg = None;
  }

let fresh_reg t =
  let r = Reg.make t.next_reg in
  t.next_reg <- t.next_reg + 1;
  r

let fresh_label ?(hint = "L") t =
  let l = Printf.sprintf "%s%d" hint t.next_label in
  t.next_label <- t.next_label + 1;
  l

let inst t kind =
  let uid = t.next_uid in
  t.next_uid <- t.next_uid + 1;
  { Rtl.uid; kind }

(* Advance the generators past anything an instruction mentions, so that
   [fresh_reg]/[fresh_label] never collide even when callers hand-assemble
   bodies instead of using [inst]. *)
let trailing_int label =
  let n = String.length label in
  let rec start i =
    if i > 0 && label.[i - 1] >= '0' && label.[i - 1] <= '9' then
      start (i - 1)
    else i
  in
  let s = start n in
  if s = n then None else int_of_string_opt (String.sub label s (n - s))

let note_inst t (i : Rtl.inst) =
  if i.uid >= t.next_uid then t.next_uid <- i.uid + 1;
  List.iter
    (fun r -> if Reg.id r >= t.next_reg then t.next_reg <- Reg.id r + 1)
    (Rtl.defs i.kind @ Rtl.uses i.kind);
  match i.kind with
  | Rtl.Label l -> (
    match trailing_int l with
    | Some n when n >= t.next_label -> t.next_label <- n + 1
    | _ -> ())
  | _ -> ()

let append t kind =
  let i = inst t kind in
  note_inst t i;
  t.body <- t.body @ [ i ]

let set_body t body =
  List.iter (note_inst t) body;
  t.body <- body

let refresh_uids t insts =
  List.map (fun (i : Rtl.inst) -> inst t i.kind) insts

let find_label t l =
  List.exists
    (fun (i : Rtl.inst) ->
      match i.kind with Rtl.Label l' -> String.equal l l' | _ -> false)
    t.body

let validate t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* Unique labels and uids. *)
  let labels = Hashtbl.create 16 in
  let uids = Hashtbl.create 64 in
  let* () =
    List.fold_left
      (fun acc (i : Rtl.inst) ->
        let* () = acc in
        let* () =
          if Hashtbl.mem uids i.uid then err "duplicate uid %d" i.uid
          else Ok (Hashtbl.add uids i.uid ())
        in
        match i.kind with
        | Rtl.Label l ->
          if Hashtbl.mem labels l then err "duplicate label %s" l
          else Ok (Hashtbl.add labels l ())
        | _ -> Ok ())
      (Ok ()) t.body
  in
  (* Branch targets defined. *)
  let* () =
    List.fold_left
      (fun acc (i : Rtl.inst) ->
        let* () = acc in
        List.fold_left
          (fun acc l ->
            let* () = acc in
            if Hashtbl.mem labels l then Ok ()
            else err "undefined label %s in %s" l (Rtl.to_string i.kind))
          (Ok ())
          (Rtl.branch_targets i.kind))
      (Ok ()) t.body
  in
  (* Ends with a terminator (the body must not fall off the end). *)
  let* () =
    match List.rev t.body with
    | last :: _ when Rtl.is_terminator last.kind -> Ok ()
    | [] -> err "empty body"
    | last :: _ -> err "body does not end in a terminator: %s"
                     (Rtl.to_string last.kind)
  in
  (* No use of an undefined register along the straight-line prefix:
     parameters (and the frame pointer, which the simulator initialises)
     count as defined; the scan stops at the first label or terminator,
     beyond which other paths may supply definitions. *)
  let* () =
    let defined = Hashtbl.create 16 in
    List.iter (fun r -> Hashtbl.replace defined (Reg.id r) ()) t.params;
    Option.iter (fun r -> Hashtbl.replace defined (Reg.id r) ()) t.fp_reg;
    let rec go = function
      | [] -> Ok ()
      | (i : Rtl.inst) :: rest -> (
        match i.kind with
        | Rtl.Label _ -> Ok ()
        | k -> (
          match
            List.find_opt
              (fun r -> not (Hashtbl.mem defined (Reg.id r)))
              (Rtl.uses k)
          with
          | Some r ->
            err "use of undefined register %s in %s" (Reg.to_string r)
              (Rtl.to_string k)
          | None ->
            List.iter
              (fun r -> Hashtbl.replace defined (Reg.id r) ())
              (Rtl.defs k);
            if Rtl.is_terminator k then Ok () else go rest))
    in
    go t.body
  in
  Ok ()

let pp ppf t =
  Format.fprintf ppf "@[<v>%s(%a):@," t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Reg.pp)
    t.params;
  List.iter
    (fun (i : Rtl.inst) ->
      match i.kind with
      | Rtl.Label _ -> Format.fprintf ppf "%a@," Rtl.pp_inst i
      | _ -> Format.fprintf ppf "  %a@," Rtl.pp_inst i)
    t.body;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
