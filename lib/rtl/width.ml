type t = W8 | W16 | W32 | W64

let bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64
let bytes w = bits w / 8

let of_bytes = function
  | 1 -> Some W8
  | 2 -> Some W16
  | 4 -> Some W32
  | 8 -> Some W64
  | _ -> None

let of_bytes_exn n =
  match of_bytes n with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Width.of_bytes_exn: %d" n)

let equal (a : t) (b : t) = a = b
let compare a b = Stdlib.compare (bits a) (bits b)
let max a b = if compare a b >= 0 then a else b
let all = [ W8; W16; W32; W64 ]

let mask = function
  | W8 -> 0xFFL
  | W16 -> 0xFFFFL
  | W32 -> 0xFFFF_FFFFL
  | W64 -> -1L

let truncate w v = Int64.logand v (mask w)
let zero_extend = truncate

let sign_extend w v =
  match w with
  | W64 -> v
  | _ ->
    let shift = 64 - bits w in
    Int64.shift_right (Int64.shift_left v shift) shift

let log2_exact v =
  if Int64.compare v 0L <= 0 then None
  else
    let rec go i =
      if i >= 63 then None
      else if Int64.equal (Int64.shift_left 1L i) v then Some i
      else go (i + 1)
    in
    go 0

let to_string = function W8 -> "b" | W16 -> "h" | W32 -> "w" | W64 -> "q"
let pp ppf w = Format.pp_print_string ppf (to_string w)
