(** Widths of memory references and sub-register values.

    The paper coalesces narrow references of width [N] bits into wide
    references of width [N x c] where [c] is a power of two. All widths the
    evaluated machines can name are bytes (8), shortwords/halfwords (16),
    longwords/words (32) and quadwords/doublewords (64). *)

type t = W8 | W16 | W32 | W64

val bits : t -> int
(** [bits w] is the size of [w] in bits. *)

val bytes : t -> int
(** [bytes w] is the size of [w] in bytes. *)

val of_bytes : int -> t option
(** [of_bytes n] is the width of [n] bytes, if [n] is 1, 2, 4 or 8. *)

val of_bytes_exn : int -> t
(** Like {!of_bytes} but raises [Invalid_argument] on other sizes. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders widths by size. *)

val max : t -> t -> t

val all : t list
(** All widths, narrowest first. *)

val mask : t -> int64
(** [mask w] is an all-ones bit pattern of [bits w] bits, e.g.
    [mask W16 = 0xFFFFL]. *)

val truncate : t -> int64 -> int64
(** [truncate w v] keeps the low [bits w] bits of [v] (zero-extending into
    the 64-bit register model). *)

val sign_extend : t -> int64 -> int64
(** [sign_extend w v] interprets the low [bits w] bits of [v] as a signed
    value and extends it to 64 bits. *)

val zero_extend : t -> int64 -> int64
(** [zero_extend w v] is a synonym for {!truncate}. *)

val log2_exact : int64 -> int option
(** [log2_exact v] is [Some n] when [v = 2^n] for [0 <= n < 63], [None]
    otherwise (including all non-positive [v]). Widths, widening factors
    and alignment masks are all powers of two, so this is the shared
    "is it a shift?" test of the strength reducer, the linear-form code
    generator and the run-time check emitter. *)

val pp : Format.formatter -> t -> unit
(** Prints the vpo-ish name: [b], [h], [w], [q]. *)

val to_string : t -> string
