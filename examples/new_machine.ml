(* Retargeting the optimizer — the point of building coalescing inside a
   vpo-style back end is that the transformation itself is machine
   independent and everything ISA-specific lives in a machine description.

   This example defines two hypothetical machines from scratch and shows
   the same source code being treated differently on each:

   - "vector96": a 32-bit RISC with single-cycle bit-field extract AND
     insert (unlike the 88100) and slow memory — coalescing both loads and
     stores pays.
   - "scalar96": the same machine with single-cycle memory and 6-cycle
     field operations — like the 68030, coalescing can only lose, and the
     profitability analysis (paper Fig. 3) keeps the baseline.

   Run with:  dune exec examples/new_machine.exe *)

open Mac_rtl
module Machine = Mac_machine.Machine
module Pipeline = Mac_vpo.Pipeline
module Memory = Mac_sim.Memory
module Interp = Mac_sim.Interp

(* A machine description is plain data: widths, costs, cache geometry. *)
let vector96 : Machine.t =
  {
    name = "vector96";
    word = Width.W32;
    load_widths = [ Width.W8; Width.W16; Width.W32 ];
    store_widths = [ Width.W8; Width.W16; Width.W32 ];
    unaligned_widths = [];
    has_native_insert = true;
    extract_cost = (fun _ -> 1);
    insert_cost = (fun _ -> 1);
    alu_cost = (function Rtl.Mul -> 3 | Rtl.Div | Rtl.Rem -> 20 | _ -> 1);
    move_cost = 1;
    load_cost = (fun _ ~aligned:_ -> 3);
    store_cost = (fun _ ~aligned:_ -> 3);
    load_latency = 3;
    mul_latency = 3;
    branch_cost = 1;
    call_cost = 4;
    icache_bytes = 8 * 1024;
    icache_miss_penalty = 12;
    bytes_per_inst = 4;
    dcache = { size_bytes = 8 * 1024; line_bytes = 32; miss_penalty = 12 };
  }

let scalar96 : Machine.t =
  {
    vector96 with
    name = "scalar96";
    extract_cost = (fun _ -> 6);
    insert_cost = (fun _ -> 6);
    load_cost = (fun _ ~aligned:_ -> 1);
    store_cost = (fun _ ~aligned:_ -> 1);
    load_latency = 2;
  }

let source =
  {|
void saturate(unsigned char src[], unsigned char dst[], int n, int bias) {
  int i;
  for (i = 0; i < n; i++)
    dst[i] = (src[i] + bias) & 255;
}
|}

let run machine level =
  let cfg = Pipeline.config ~level machine in
  let compiled = Pipeline.compile_source cfg source in
  let n = 4096 in
  let memory = Memory.create ~size:(1 lsl 16) in
  let alloc = Memory.allocator memory in
  let src = Memory.alloc alloc ~align:8 n in
  let dst = Memory.alloc alloc ~align:8 n in
  for i = 0 to n - 1 do
    Memory.store memory
      ~addr:(Int64.add src (Int64.of_int i))
      ~width:Width.W8
      (Int64.of_int (i land 0xFF))
  done;
  let result =
    Interp.run ~machine ~memory compiled.funcs ~entry:"saturate"
      ~args:[ src; dst; Int64.of_int n; 100L ]
      ()
  in
  (* verify against a direct computation *)
  for i = 0 to n - 1 do
    let got =
      Memory.load memory
        ~addr:(Int64.add dst (Int64.of_int i))
        ~width:Width.W8 ~sign:Rtl.Unsigned
    in
    assert (Int64.to_int got = ((i land 0xFF) + 100) land 0xFF)
  done;
  let status =
    List.concat_map
      (fun (_, rs) ->
        List.map
          (fun (r : Mac_core.Coalesce.loop_report) ->
            match r.status with
            | Mac_core.Coalesce.Coalesced ->
              Printf.sprintf "coalesced (%d load group(s), %d store \
                              group(s))"
                r.load_groups r.store_groups
            | Mac_core.Coalesce.Unrolled_only -> "kept the unrolled baseline"
            | Mac_core.Coalesce.No_narrow_refs -> "nothing to widen"
            | Mac_core.Coalesce.Rejected why -> "rejected: " ^ why)
          rs)
      compiled.reports
  in
  (result.metrics.cycles, String.concat "; " status)

let () =
  Fmt.pr "== Retargeting: the same kernel on two home-made machines ==@.@.";
  List.iter
    (fun machine ->
      let base, _ = run machine Pipeline.O2 in
      let coal, verdict = run machine Pipeline.O4 in
      Fmt.pr "%-9s %s@." machine.Machine.name verdict;
      Fmt.pr "          baseline %6d cycles, with coalescing %6d cycles \
              (%+.1f%%)@.@."
        base coal
        (100.0 *. float_of_int (base - coal) /. float_of_int base))
    [ vector96; scalar96 ];
  Fmt.pr
    "The transformation code is identical for both targets; only the \
     machine description (costs, widths, cache) differs — vpo-style \
     retargetability.@."
