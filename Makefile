# Convenience wrappers around dune; `make verify` is the full
# correctness gate: build, the whole test suite (which includes the
# @verify alias below), then an explicit verified O4 compile +
# differential run of the Fig. 1 dot product on each paper machine.

MCC = dune exec bin/mcc.exe --

.PHONY: all build test verify bench bench-json bench-validate estimate \
  triage profile alias-report sched-report tvalid-report serve-bench clean

all: build

build:
	dune build

test: build
	dune runtest

verify: build
	dune runtest
	$(MCC) --bench dotproduct -O O4 --machine alpha --verify
	$(MCC) --bench dotproduct -O O4 --machine mc88100 --verify
	$(MCC) --bench dotproduct -O O4 --machine mc68030 --verify

bench: build
	dune exec bench/main.exe

# Quick sweep that writes and self-validates BENCH_sim.json (the harness
# refuses to write a document that fails its independent re-parse).
bench-json: build
	MAC_QUICK=1 dune exec bench/main.exe

# One gate for all three bench artifacts: re-validate whichever of
# BENCH_sim.json / BENCH_est.json / BENCH_serve.json exist with the
# same independent parsers the emitting harnesses use (dispatched on
# each document's own schema field). MAC_TVALID_BUDGET=<seconds> or
# MAC_TVALID_MAX_RATIO=<fraction> additionally gates the sim sweep's
# total translation-validation time — the CI regression tripwire for
# the incremental validator.
bench-validate: build
	dune exec bench/validate.exe

# The static-estimation sweep: predict every paper-table cell without
# simulating, pin each prediction against the simulator, and write the
# schema-validated BENCH_est.json (the harness exits non-zero when the
# median cycle error exceeds the documented tolerance).
estimate: build
	dune exec bench/estimate.exe -- --size 48

# The payoff mode: rank cells by predicted coalescing benefit and only
# simulate the interesting half.
triage: build
	dune exec bench/estimate.exe -- --size 48 --triage

# Load-test the mccd compile daemon: fork it with a fresh cache, replay
# a duplicate-heavy burst from several client processes, and write the
# schema-validated BENCH_serve.json (the harness exits non-zero unless
# cache hits are byte-identical to the cold compile and the hit-path p50
# latency beats the miss path by the documented factor).
serve-bench: build
	dune exec bench/serve.exe

# Where compile time goes: the Table II sweep in the paper's measurement
# configuration, with the per-pass wall-clock breakdown.
profile: build
	$(MCC) --table --force --machine alpha --size 64 --profile-passes

# What the static disambiguation oracle proved: per benchmark, the
# guards emitted vs discharged (with their certificates), under the
# asserted layout facts, with the audit re-verifying every certificate.
alias-report: build
	@for b in dotproduct convolution image_add image_add16 image_xor \
	  translate eqntott mirror; do \
	  echo "== $$b"; \
	  $(MCC) --bench $$b -O O4 --machine alpha --force --assume-layout \
	    --explain-alias --verify-level full || exit 1; \
	done

# What the software pipeliner did: per benchmark, every loop's MII /
# achieved II / stage count and commit status, with the schedule audit
# re-verifying every certificate (--verify-level full).
sched-report: build
	@for b in dotproduct convolution image_add image_add16 image_xor \
	  translate eqntott mirror; do \
	  echo "== $$b"; \
	  $(MCC) --bench $$b -O O4 --machine mc88100 --force \
	    --explain-sched --verify-level full || exit 1; \
	done

# What the translation validator proved: per benchmark, a forced-O4
# compile with every pass validated (--explain-tvalid implies
# --verify-level full) and the per-pass counters — validations run,
# block pairs checked vs skipped (generic-transfer equality), loop
# regions carved, audited fallbacks with reasons, time.
tvalid-report: build
	@for b in dotproduct convolution image_add image_add16 image_xor \
	  translate eqntott mirror; do \
	  echo "== $$b"; \
	  $(MCC) --bench $$b -O O4 --machine alpha --force --assume-layout \
	    --explain-tvalid || exit 1; \
	done

clean:
	dune clean
