(* The estimation sweep: predict every paper-table cell with the static
   estimator, pin each prediction against the simulator, and write the
   machine-readable BENCH_est.json (schema mac-bench-est/1) next to a
   human-readable accuracy table. With --triage the payoff mode runs
   instead of the full pin: cells are ranked by predicted coalescing
   savings and only the interesting half is simulated.

     dune exec bench/estimate.exe -- [--size N] [--jobs N] [--triage]
                                     [--out FILE]

   `make estimate` runs this and CI validates the artifact (documented
   tolerance on the median cycle error). *)

module Estcells = Mac_workloads.Estcells

let () =
  let size = ref 48 in
  let jobs = ref None in
  let triage = ref false in
  let out = ref "BENCH_est.json" in
  let rec parse = function
    | [] -> ()
    | "--size" :: v :: rest ->
      size := int_of_string v;
      parse rest
    | "--jobs" :: v :: rest ->
      jobs := Some (int_of_string v);
      parse rest
    | "--triage" :: rest ->
      triage := true;
      parse rest
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s\n\
         usage: estimate [--size N] [--jobs N] [--triage] [--out FILE]\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let size = !size in
  let t0 = Unix.gettimeofday () in
  let triage_result =
    if !triage then Some (Estcells.run_triage ?jobs:!jobs ~size ())
    else None
  in
  let cells =
    if !triage then Estcells.predictions ~size ()
    else Estcells.run ?jobs:!jobs ~size ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  (match triage_result with
  | Some t ->
    Format.printf
      "@[<v>triage (size %d): simulated %d, skipped %d, order agreement \
       %.2f@,est %.4fs vs sim %.4fs@,"
      size t.Estcells.simulated t.Estcells.skipped t.Estcells.agreement
      t.Estcells.t_est_seconds t.Estcells.t_sim_seconds;
    Format.printf "| %-6s | %-12s | %9s | %9s |@," "sect" "program"
      "pred sv%" "sim sv%";
    List.iter
      (fun (r : Estcells.ranked) ->
        Format.printf "| %-6s | %-12s | %9.2f | %9s |@," r.r_section
          r.r_bench r.r_pred_savings
          (match r.r_sim_savings with
          | Some s -> Printf.sprintf "%.2f" s
          | None -> "skipped"))
      t.Estcells.ranking;
    Format.printf "@]@."
  | None ->
    Format.printf
      "@[<v>estimator accuracy (size %d; median cycle err %.4f, miss err \
       %.4f, tolerance %.2f)@,"
      size
      (Estcells.median_cycle_err cells)
      (Estcells.median_miss_err cells)
      Estcells.tolerance;
    Format.printf "| %-6s | %-12s | %-3s | %10s | %10s | %7s | %7s |@,"
      "sect" "program" "lvl" "pred cyc" "sim cyc" "cyc err" "mis err";
    List.iter
      (fun (c : Estcells.ecell) ->
        Format.printf "| %-6s | %-12s | %-3s | %10d | %10s | %7s | %7s |@,"
          c.Estcells.section c.Estcells.bench c.Estcells.level
          c.Estcells.pred_cycles
          (match c.Estcells.sim_cycles with
          | Some s -> string_of_int s
          | None -> "-")
          (match Estcells.cycle_err c with
          | Some e -> Printf.sprintf "%.4f" e
          | None -> "-")
          (match Estcells.miss_err c with
          | Some e -> Printf.sprintf "%.4f" e
          | None -> "-"))
      cells;
    Format.printf "@]@.");
  let json = Estcells.to_json ~size ?triage:triage_result cells in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  (match Estcells.validate json with
  | Ok n -> Printf.printf "%s: %d cells, %.1fs wall\n" !out n wall
  | Error msg ->
    Printf.eprintf "VALIDATION FAILED: %s\n" msg;
    exit 1)
