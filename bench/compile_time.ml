(* Compile-time microharness: times the *compiler* side of the Table II
   sweep (no simulation), the quantity the analysis manager and bitvector
   dataflow engine target. Prints per-benchmark O4 times and the summed
   O1-O4 sweep time; repetitions keep the numbers stable.

     dune exec bench/compile_time.exe [-- reps]

   The configuration mirrors Tables: forced coalescing (profitability
   gate and I-cache guard off), coalesce-first, alpha. *)

module Pipeline = Mac_vpo.Pipeline
module Machine = Mac_machine.Machine

let levels = Pipeline.[ O1; O2; O3; O4 ]

let coalesce =
  {
    Mac_core.Coalesce.default with
    respect_profitability = false;
    icache_guard = false;
  }

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let () =
  let reps = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5 in
  let machine = Machine.alpha in
  let benches = Mac_workloads.Workloads.all in
  (* warm up the minor heap / code paths once *)
  List.iter
    (fun (b : Mac_workloads.Workloads.t) ->
      ignore
        (Pipeline.compile_source
           (Pipeline.config ~level:O4 ~coalesce machine)
           b.source))
    benches;
  let total = ref 0.0 in
  Format.printf "@[<v>compile time (alpha, forced coalescing, %d reps)@," reps;
  Format.printf "| %-12s | %10s |@," "program" "O4 ms";
  List.iter
    (fun (b : Mac_workloads.Workloads.t) ->
      let _, dt =
        time (fun () ->
            for _ = 1 to reps do
              ignore
                (Pipeline.compile_source
                   (Pipeline.config ~level:O4 ~coalesce machine)
                   b.source)
            done)
      in
      Format.printf "| %-12s | %10.2f |@," b.name (dt /. float_of_int reps *. 1e3))
    benches;
  List.iter
    (fun level ->
      let _, dt =
        time (fun () ->
            for _ = 1 to reps do
              List.iter
                (fun (b : Mac_workloads.Workloads.t) ->
                  ignore
                    (Pipeline.compile_source
                       (Pipeline.config ~level ~coalesce machine)
                       b.source))
                benches
            done)
      in
      let dt = dt /. float_of_int reps in
      total := !total +. dt;
      Format.printf "%s sweep compile: %.2f ms@,"
        (Pipeline.level_to_string level)
        (dt *. 1e3))
    levels;
  Format.printf "O1-O4 sweep compile total: %.2f ms@," (!total *. 1e3);
  (* Per-pass breakdown of one O4 sweep, from the pipeline's own
     profiling hooks. *)
  let agg : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Mac_workloads.Workloads.t) ->
      let c =
        Pipeline.compile_source
          (Pipeline.config ~level:O4 ~coalesce machine)
          b.source
      in
      List.iter
        (fun (name, s) ->
          Hashtbl.replace agg name
            (s +. Option.value (Hashtbl.find_opt agg name) ~default:0.))
        c.Pipeline.pass_seconds)
    benches;
  Format.printf "O4 sweep per-pass breakdown:@,";
  Hashtbl.fold (fun n s acc -> (n, s) :: acc) agg []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.iter (fun (n, s) ->
         Format.printf "  %-10s %8.2f ms@," n (s *. 1e3));
  Format.printf "@]"
