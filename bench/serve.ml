(* The serve load-test harness behind BENCH_serve.json.

   Replays a duplicate-heavy compile workload against a freshly started
   mccd daemon from several concurrent client processes and records the
   serve economics: cold-compile vs cache-hit p50/p99 latency, the p50
   speedup (the acceptance bar is >= 10x, gated below), throughput,
   hit rate, and whether the hit path returned bytes identical to the
   cold path. Two phases, separated by a full barrier so hot latencies
   never hide behind a batch-mate's cold compile:

     cold: every client issues its own run of *distinct* sources —
           all cache misses, each compiled once by the daemon pool;
     hot:  every client re-issues one shared request — all cache hits
           (the daemon answers hits before dispatching any compile).

   The daemon runs in a forked child of this process; clients are
   forked too, one process per client, each writing its latency
   samples to a private file the parent aggregates.

   Environment:
     MAC_SERVE_CLIENTS      concurrent client processes (default 4)
     MAC_SERVE_UNIQUE       distinct cold requests per client (default 8)
     MAC_SERVE_HOT          hot requests per client (default 24)
     MAC_SERVE_MIN_SPEEDUP  required cold/hot p50 ratio (default 10)
     MAC_JOBS               daemon worker domains
     MAC_JSON_SERVE         output path (default ./BENCH_serve.json) *)

module Serve = Mac_serve
module Protocol = Serve.Protocol
module Report = Serve.Report
module W = Mac_workloads.Workloads

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let clients = env_int "MAC_SERVE_CLIENTS" 4
let unique_per_client = env_int "MAC_SERVE_UNIQUE" 8
let hot_per_client = env_int "MAC_SERVE_HOT" 24
let min_speedup = float_of_int (env_int "MAC_SERVE_MIN_SPEEDUP" 10)

(* hit rate over the whole replay: per mille, so the default (a
   duplicate-heavy burst must be served mostly from cache) stays an
   integer env knob like the others *)
let min_hit_rate = float_of_int (env_int "MAC_SERVE_MIN_HITRATE_PERMILLE" 500) /. 1000.0

let json_path =
  Option.value (Sys.getenv_opt "MAC_JSON_SERVE") ~default:"BENCH_serve.json"

let now () = Unix.gettimeofday ()

(* An expensive, deterministic compile: O4 with the full verifier. *)
let request_of src =
  Protocol.request ~level:Mac_vpo.Pipeline.O4 ~verify:Mac_vpo.Pipeline.Vfull
    ~machine:"alpha" src

let hot_request = request_of (`Bench "image_add")

let cold_request ~client j =
  request_of
    (`Source (W.image_binop_src (Printf.sprintf "k_c%d_%d" client j) "+"))

let die fmt = Fmt.kstr (fun s -> Fmt.epr "serve-bench: %s@." s; exit 1) fmt

(* ------------------------------------------------------------------ *)

let work_dir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcc-serve-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let socket = Filename.concat work_dir "mccd.sock"
let sample_file phase ci = Filename.concat work_dir (Printf.sprintf "%s.%d" phase ci)

let start_daemon () =
  match Unix.fork () with
  | 0 ->
    (try
       let cache = Serve.Cache.open_dir (Filename.concat work_dir "cache") in
       ignore (Serve.Server.serve ~log:ignore ~socket ~cache ())
     with _ -> ());
    Unix._exit 0
  | pid ->
    (* wait until the daemon listens *)
    let deadline = now () +. 10.0 in
    let rec poll () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let up =
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if up then ()
      else if now () > deadline then die "daemon did not come up on %s" socket
      else begin
        Unix.sleepf 0.02;
        poll ()
      end
    in
    poll ();
    pid

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

(* One client process: issue the requests, log "<seconds> <cached> <ok>"
   lines to its sample file. *)
let run_client ~phase ~ci reqs =
  match Unix.fork () with
  | 0 ->
    let oc = open_out (sample_file phase ci) in
    (try
       List.iter
         (fun req ->
           let t0 = now () in
           match Serve.Client.request ~socket req with
           | Ok (_, reply) ->
             Printf.fprintf oc "%.9f %b %b\n" (now () -. t0)
               reply.Protocol.r_cached reply.Protocol.r_ok
           | Error e -> Printf.fprintf oc "0 false false # %s\n" e)
         reqs
     with _ -> ());
    close_out_noerr oc;
    Unix._exit 0
  | pid -> pid

let run_phase ~phase reqs_of =
  let pids = List.init clients (fun ci -> run_client ~phase ~ci (reqs_of ci)) in
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  List.concat
    (List.init clients (fun ci ->
         let ic = open_in (sample_file phase ci) in
         let rec go acc =
           match input_line ic with
           | line -> (
             match String.split_on_char ' ' line with
             | seconds :: cached :: ok :: _ ->
               go
                 (( float_of_string seconds,
                    bool_of_string cached,
                    bool_of_string ok )
                 :: acc)
             | _ -> go acc)
           | exception End_of_file -> List.rev acc
         in
         let samples = go [] in
         close_in_noerr ic;
         samples))

let () =
  Fmt.pr
    "serve load test: %d client(s) x (%d cold + %d hot) requests, daemon \
     %s@."
    clients unique_per_client hot_per_client
    Mac_vpo.Version.compiler_fingerprint;
  let daemon = start_daemon () in
  Fun.protect ~finally:(fun () -> stop_daemon daemon) @@ fun () ->
  (* byte-identity: the same key cold then hot must return identical bytes *)
  let probe req =
    match Serve.Client.request ~socket req with
    | Ok (_, reply) -> reply
    | Error e -> die "probe request failed: %s" e
  in
  let miss = probe hot_request in
  let hit = probe hot_request in
  if miss.Protocol.r_cached then die "probe miss was already cached";
  if not hit.Protocol.r_cached then die "probe hit missed the cache";
  let byte_identical =
    String.equal miss.Protocol.r_body hit.Protocol.r_body
    && miss.r_ok && hit.r_ok
  in
  if not byte_identical then
    die "cache-hit body diverged from the cold-compile body";
  let t0 = now () in
  let cold_samples =
    run_phase ~phase:"cold" (fun ci ->
        List.init unique_per_client (cold_request ~client:ci))
  in
  let hot_samples =
    run_phase ~phase:"hot" (fun _ -> List.init hot_per_client (fun _ -> hot_request))
  in
  let wall = now () -. t0 in
  let all = cold_samples @ hot_samples in
  let failed =
    List.length (List.filter (fun (_, _, ok) -> not ok) all)
  in
  if failed > 0 then die "%d request(s) failed" failed;
  let latencies samples = List.map (fun (s, _, _) -> s) samples in
  (* cold latencies: only true misses (a client's duplicate would distort) *)
  let cold =
    Report.phase_of_samples
      (latencies (List.filter (fun (_, cached, _) -> not cached) cold_samples))
  in
  let hot =
    Report.phase_of_samples
      (latencies (List.filter (fun (_, cached, _) -> cached) hot_samples))
  in
  let requests = List.length all + 2 (* the two probes *) in
  let hits =
    2 - 1 (* probe hit *)
    + List.length (List.filter (fun (_, cached, _) -> cached) all)
  in
  let unique = (clients * unique_per_client) + 1 in
  let report =
    {
      Report.clients;
      requests;
      unique;
      hit_rate = float_of_int hits /. float_of_int requests;
      cold;
      hot;
      p50_speedup = (if hot.Report.p50_ms > 0.0 then cold.Report.p50_ms /. hot.Report.p50_ms else 0.0);
      throughput_rps = float_of_int (List.length all) /. wall;
      wall_seconds = wall;
      byte_identical;
    }
  in
  Fmt.pr
    "cold: p50 %.3f ms, p99 %.3f ms over %d miss(es)@.\
     hot:  p50 %.3f ms, p99 %.3f ms over %d hit(s)@.\
     p50 speedup %.1fx, hit rate %.3f, %.0f req/s, wall %.2f s, \
     byte-identical %b@."
    report.Report.cold.p50_ms report.cold.p99_ms report.cold.n
    report.hot.p50_ms report.hot.p99_ms report.hot.n report.p50_speedup
    report.hit_rate report.throughput_rps report.wall_seconds
    report.byte_identical;
  let json = Report.to_json report in
  (match Report.validate json with
  | Ok _ -> ()
  | Error msg -> die "refusing to write invalid BENCH_serve.json: %s" msg);
  if report.Report.p50_speedup < min_speedup then
    die "p50 speedup %.1fx is below the required %.0fx" report.p50_speedup
      min_speedup;
  if report.Report.hit_rate <= min_hit_rate then
    die "hit rate %.3f is not above the required %.3f" report.hit_rate
      min_hit_rate;
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s (validated, schema %s)@." json_path "mac-bench-serve/1"
