(* One gate for every bench artifact: re-validate BENCH_sim.json,
   BENCH_est.json and BENCH_serve.json with the same independent
   parsers the emitting harnesses use, dispatched by the document's
   own "schema" field — so CI checks the artifacts it uploads with
   exactly the code that defined them, not a drift-prone pile of
   greps.

   Usage: validate [FILE...]. With no arguments, whichever of the
   three canonical files exist are checked (at least one must). A file
   named explicitly must exist and must validate.

   The translation-validation regression gate rides along: when
   MAC_TVALID_BUDGET (seconds) is set, the sim document's total
   tvalid_seconds must stay under it, and when MAC_TVALID_MAX_RATIO is
   set, under that fraction of total compile_seconds — either trip
   fails the run. The budget pins the incremental validator's win: a
   change that quietly reverts block skipping or memoization shows up
   as an order-of-magnitude tvalid_seconds jump long before anyone
   reads a profile. *)

module J = Mac_workloads.Jsonio

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sum_obj doc key =
  match J.member key doc with
  | Some (J.Obj fields) ->
    Some
      (List.fold_left
         (fun acc (_, v) -> match v with J.Num n -> acc +. n | _ -> acc)
         0.0 fields)
  | _ -> None

let num_member doc key =
  match J.member key doc with Some (J.Num n) -> Some n | _ -> None

(* The sim harness emits tvalid_seconds as a per-pass object and
   compile_seconds as a total at document level; the gate compares the
   object's sum against the total. *)
let tvalid_gate path doc =
  let budget =
    Option.bind (Sys.getenv_opt "MAC_TVALID_BUDGET") float_of_string_opt
  in
  let max_ratio =
    Option.bind (Sys.getenv_opt "MAC_TVALID_MAX_RATIO") float_of_string_opt
  in
  if budget = None && max_ratio = None then Ok ()
  else
    match (sum_obj doc "tvalid_seconds", num_member doc "compile_seconds") with
    | None, _ -> Error (path ^ " has no tvalid_seconds object to gate")
    | _, None -> Error (path ^ " has no compile_seconds number to gate")
    | Some tvalid, Some compile -> (
      Printf.printf "%s: tvalid %.3f s over %.3f s of compiles (%.1f%%)\n"
        path tvalid compile
        (if compile > 0.0 then 100.0 *. tvalid /. compile else 0.0);
      match (budget, max_ratio) with
      | Some b, _ when tvalid > b ->
        Error
          (Printf.sprintf
             "%s: tvalid_seconds %.3f exceeds MAC_TVALID_BUDGET %.3f — the \
              incremental validator regressed"
             path tvalid b)
      | _, Some r when compile > 0.0 && tvalid /. compile > r ->
        Error
          (Printf.sprintf
             "%s: tvalid/compile ratio %.3f exceeds MAC_TVALID_MAX_RATIO %.3f"
             path (tvalid /. compile) r)
      | _ -> Ok ())

let validate_file path =
  let text = read_file path in
  let schema =
    match J.parse text with
    | Error e -> Error (path ^ " does not parse: " ^ e)
    | Ok doc -> (
      match J.member "schema" doc with
      | Some (J.Str s) -> Ok (s, doc)
      | _ -> Error (path ^ " has no \"schema\" string"))
  in
  match schema with
  | Error e -> Error e
  | Ok (s, doc) -> (
    let described ?(gate = false) check =
      match check text with
      | Ok _ -> (
        Printf.printf "%s: %s ok\n" path s;
        if not gate then Ok ()
        else
          match tvalid_gate path doc with
          | Ok () -> Ok ()
          | Error _ as e -> e)
      | Error e -> Error (path ^ ": " ^ e)
    in
    match s with
    | "mac-bench-sim/6" -> described ~gate:true Mac_workloads.Sweep.validate
    | "mac-bench-est/1" -> described Mac_workloads.Estcells.validate
    | "mac-bench-serve/1" -> described Mac_serve.Report.validate
    | other -> Error (Printf.sprintf "%s: unknown schema %S" path other))

let () =
  let canonical = [ "BENCH_sim.json"; "BENCH_est.json"; "BENCH_serve.json" ] in
  let files =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> List.filter Sys.file_exists canonical
    | named -> named
  in
  if files = [] then (
    prerr_endline
      "validate: none of BENCH_sim.json / BENCH_est.json / BENCH_serve.json \
       exist";
    exit 1);
  let failed =
    List.fold_left
      (fun failed path ->
        match
          if Sys.file_exists path then validate_file path
          else Error (path ^ ": no such file")
        with
        | Ok () -> failed
        | Error e ->
          prerr_endline ("validate: " ^ e);
          true)
      false files
  in
  if failed then exit 1
