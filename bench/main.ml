(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md experiment index), runs the
   ablation experiments of DESIGN.md §5, and finishes with Bechamel
   microbenchmarks of the compiler and simulator themselves.

   Output sections are labelled with the experiment ids used in DESIGN.md
   and EXPERIMENTS.md: FIG1, TAB2, TAB3, TAB4, FIG5, PREH, ABL1..ABL4.

   The benchmark x machine x mode cells of each section are computed on a
   pool of domains (Pool.map) and joined in canonical order, so the
   printed output is byte-identical to a serial run; only the wall clock
   changes with MAC_JOBS. Alongside the human-readable sections the
   harness writes BENCH_sim.json, a machine-readable record of every
   TAB2/TAB3/TAB4/SCHED/FULL cell plus the sweep's wall-clock and the
   measured serial-reference vs parallel-fast speedup.

   Environment:
     MAC_SIZE   image edge length (default 500, the paper's size)
     MAC_QUICK  if set, size 64 and shorter Bechamel quotas
     MAC_JOBS   worker domains (default Domain.recommended_domain_count)
     MAC_JSON   where to write BENCH_sim.json (default ./BENCH_sim.json) *)

open Mac_rtl
module W = Mac_workloads.Workloads
module Tables = Mac_workloads.Tables
module Pool = Mac_workloads.Pool
module Sweep = Mac_workloads.Sweep
module Machine = Mac_machine.Machine
module Pipeline = Mac_vpo.Pipeline
module Coalesce = Mac_core.Coalesce

let quick = Sys.getenv_opt "MAC_QUICK" <> None

let size =
  match Sys.getenv_opt "MAC_SIZE" with
  | Some s -> int_of_string s
  | None -> if quick then 64 else 500

let jobs = Pool.jobs ()
let json_path = Option.value (Sys.getenv_opt "MAC_JSON") ~default:"BENCH_sim.json"
let now () = Unix.gettimeofday ()
let section id title = Fmt.pr "@.=== %s: %s ===@." id title

(* ------------------------------------------------------------------ *)
(* FIG1: the dot product of Fig. 1 — original vs coalesced RTL and the
   75% memory-reference reduction. *)

let fig1 () =
  section "FIG1" "dot product (paper Fig. 1), DEC Alpha";
  let show level label =
    let cfg = Pipeline.config ~level Machine.alpha in
    let compiled = Pipeline.compile_source cfg W.dotproduct_src in
    Fmt.pr "--- %s ---@.%a@." label Func.pp (List.hd compiled.funcs)
  in
  show Pipeline.O1 "rolled loop (O1, after legalization: LDQ_U + extract)";
  show Pipeline.O4 "unrolled x4 + coalesced (O4)";
  let refs =
    Pool.map ~jobs
      (fun level ->
        let o = W.run ~size:4096 ~machine:Machine.alpha ~level W.dotproduct in
        o.metrics.loads + o.metrics.stores)
      Pipeline.[ O2; O4 ]
  in
  let base, coal =
    match refs with [ b; c ] -> (b, c) | _ -> assert false
  in
  Fmt.pr
    "memory references for n=4096: unrolled baseline=%d coalesced=%d \
     (%.1f%% eliminated; paper: 75%%)@."
    base coal
    (100.0 *. float_of_int (base - coal) /. float_of_int base)

(* ------------------------------------------------------------------ *)
(* TAB2/TAB3/TAB4: the evaluation tables. Each table's benchmark x level
   cells run on the pool; the rows come back in canonical order and are
   rendered exactly as before. Returns the rows for the JSON record. *)

let table id machine note =
  section id (Printf.sprintf "%s (%dx%d images)" note size size);
  let rows = Tables.table ~size ~jobs ~machine () in
  Fmt.pr "%a@." (fun ppf r -> Tables.pp_table ppf machine r) rows;
  rows

(* ------------------------------------------------------------------ *)
(* SCHED: the same forced-coalescing tables with the [-Osched] software
   pipeliner on and the Pipelined profitability oracle pricing the
   coalescer's versions. The harness gates on the headline cell: the
   scheduled mc88100 image_add16/O4 must beat its unscheduled TAB3
   counterpart, or the JSON is not written. *)

let sched_table machine note =
  section "SCHED"
    (Printf.sprintf "%s (%dx%d images, -Osched + Pipelined oracle)" note size
       size);
  let rows =
    Tables.table ~size ~jobs ~pipeline_sched:true
      ~profit_mode:Mac_core.Profitability.Pipelined ~machine ()
  in
  Fmt.pr "%a@." (fun ppf r -> Tables.pp_table ppf machine r) rows;
  rows

let o4_cycles bench rows =
  let r =
    List.find
      (fun (r : Tables.row) -> String.equal r.Tables.bench.W.name bench)
      rows
  in
  r.Tables.loads_stores

let sched_gate ~sched_rows ~tab3_rows =
  let scheduled = o4_cycles "image_add16" sched_rows in
  let unscheduled = o4_cycles "image_add16" tab3_rows in
  if scheduled >= unscheduled then
    failwith
      (Printf.sprintf
         "SCHED gate: mc88100 image_add16 O4 with -Osched is %d cycles, \
          not below the unscheduled TAB3 cell's %d"
         scheduled unscheduled);
  Fmt.pr
    "SCHED gate: mc88100 image_add16 O4 %d -> %d cycles (-%.1f%%) with \
     -Osched@."
    unscheduled scheduled
    (100.0
    *. float_of_int (unscheduled - scheduled)
    /. float_of_int unscheduled)

(* ------------------------------------------------------------------ *)
(* SPEEDUP: the Table II sweep under each engine, serially, vs the
   domain-parallel pre-decoded run. All engines produce the same rows
   (the equivalence tests pin them to each other); only the clock
   differs. The fast-vs-jit ratio at jobs=1 is the superblock closure
   compilation payoff. *)

let speedup_tab2 parallel_fast_seconds =
  section "SPEEDUP"
    "Table II sweep: serial reference vs serial fast vs serial jit vs \
     parallel fast";
  let serial engine =
    let t0 = now () in
    ignore (Tables.table ~size ~jobs:1 ~engine ~machine:Machine.alpha ());
    now () -. t0
  in
  let serial_reference = serial `Reference in
  let serial_fast = serial `Fast in
  let serial_jit = serial `Jit in
  let ratio =
    if parallel_fast_seconds > 0.0 then
      serial_reference /. parallel_fast_seconds
    else 0.0
  in
  let jit_ratio = if serial_jit > 0.0 then serial_fast /. serial_jit else 0.0 in
  Fmt.pr
    "28 cells at size %d, jobs=1: reference %.2fs, fast %.2fs, jit %.2fs \
     (fast/jit = %.2fx)@."
    size serial_reference serial_fast serial_jit jit_ratio;
  Fmt.pr "parallel fast (%d job(s)): %.2fs -> %.1fx over serial reference@."
    jobs parallel_fast_seconds ratio;
  {
    Sweep.serial_reference_seconds = serial_reference;
    serial_fast_seconds = serial_fast;
    serial_jit_seconds = serial_jit;
    parallel_fast_seconds;
    ratio;
    jit_ratio;
  }

(* ------------------------------------------------------------------ *)
(* ENGINES: the cross-engine equivalence gate the JSON record rides on.
   One Table II cell runs under all three engines and every metric must
   agree bit for bit; then a deliberately trapping program must produce
   the identical trap string on all three. A mismatch aborts the harness
   (and therefore CI) before an invalid BENCH_sim.json can be written. *)

let engines_check () =
  section "ENGINES" "cross-engine equivalence on one Table II cell";
  let bench = Option.get (W.find "image_add") in
  let outcomes =
    Pool.map ~jobs
      (fun engine ->
        W.run ~size:64 ~engine ~machine:Machine.alpha ~level:Pipeline.O4
          bench)
      [ `Reference; `Fast; `Jit ]
  in
  let r, f, j =
    match outcomes with [ r; f; j ] -> (r, f, j) | _ -> assert false
  in
  let check name (o : W.outcome) =
    if not (Int64.equal o.W.value r.W.value) then
      failwith
        (Printf.sprintf "ENGINES: %s return value differs from reference"
           name);
    if o.W.metrics <> r.W.metrics then
      failwith
        (Printf.sprintf "ENGINES: %s metrics differ from reference" name);
    if not o.W.correct then
      failwith (Printf.sprintf "ENGINES: %s output is wrong" name);
    Fmt.pr
      "%-9s cycles=%d insts=%d loads=%d stores=%d dcache=%d/%d ok@." name
      o.W.metrics.cycles o.W.metrics.insts o.W.metrics.loads
      o.W.metrics.stores o.W.metrics.dcache_hits o.W.metrics.dcache_misses
  in
  check "reference" r;
  check "fast" f;
  check "jit" j;
  (* trap fidelity: out-of-fuel fires mid-run with the same message *)
  let trap_of engine =
    let cfg = Pipeline.config ~level:Pipeline.O4 Machine.alpha in
    let compiled = Pipeline.compile_source cfg bench.W.source in
    let mem = Mac_sim.Memory.create ~size:(1 lsl 16) in
    match
      Mac_sim.Interp.run ~machine:Machine.alpha ~memory:mem compiled.funcs
        ~entry:bench.W.entry
        ~args:[ 64L; 4096L; 8192L; 1024L ]
        ~fuel:100 ~engine ()
    with
    | _ -> "no trap"
    | exception Mac_sim.Interp.Trap msg -> msg
  in
  let tr = trap_of `Reference in
  List.iter
    (fun (name, engine) ->
      let t = trap_of engine in
      if not (String.equal t tr) then
        failwith
          (Printf.sprintf "ENGINES: %s trap %S differs from reference %S"
             name t tr))
    [ ("fast", `Fast); ("jit", `Jit) ];
  Fmt.pr "trap fidelity: all engines trap with %S@." tr

(* ------------------------------------------------------------------ *)
(* FIG5: the run-time alignment and alias dispatch. *)

let count_labels (o : W.outcome) prefix =
  List.fold_left
    (fun acc (l, c) ->
      if
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix
      then acc + c
      else acc)
    0 o.metrics.label_counts

let fig5 () =
  section "FIG5" "run-time alignment/alias dispatch (paper Fig. 5)";
  let bench = Option.get (W.find "image_add") in
  let cases =
    [
      ("aligned, disjoint", W.default_layout);
      ("misaligned (skew 2)", { W.default_layout with skew = 2 });
      ("overlapping buffers", { W.default_layout with overlap = true });
    ]
  in
  let outcomes =
    Pool.map ~jobs
      (fun (_, layout) ->
        W.run ~layout ~size:64 ~machine:Machine.alpha ~level:Pipeline.O4
          bench)
      cases
  in
  List.iter2
    (fun (label, _) o ->
      Fmt.pr
        "%-22s -> coalesced-loop iterations=%-6d safe-loop iterations=%-6d \
         output %s@."
        label (count_labels o "Lmain") (count_labels o "Lsafe")
        (if o.W.correct then "correct" else "WRONG"))
    cases outcomes

(* ------------------------------------------------------------------ *)
(* PREH: preheader check cost (the paper: 10-15 instructions). *)

(* Count the final (post-optimization) instructions of a loop's dispatch
   region: everything between the dispatch label and the unrolled loop's
   own label. *)
let dispatch_insts (f : Func.t) header =
  let rec skip_to = function
    | { Rtl.kind = Rtl.Label l; _ } :: rest when String.equal l header ->
      rest
    | _ :: rest -> skip_to rest
    | [] -> []
  in
  let rec count acc = function
    | { Rtl.kind = Rtl.Label l; _ } :: _
      when String.length l >= 5 && String.sub l 0 5 = "Lmain" ->
      acc
    | { Rtl.kind = Rtl.Label _; _ } :: rest -> count acc rest
    | _ :: rest -> count (acc + 1) rest
    | [] -> acc
  in
  count 0 (skip_to f.Func.body)

let preh () =
  section "PREH" "run-time check instructions per coalesced loop (Alpha)";
  let compiled_of =
    Pool.map ~jobs
      (fun (bench : W.t) ->
        let cfg = Pipeline.config ~level:Pipeline.O4 Machine.alpha in
        (bench, Pipeline.compile_source cfg bench.source))
      (W.dotproduct :: W.all)
  in
  List.iter
    (fun ((bench : W.t), (compiled : Pipeline.compiled)) ->
      List.iter
        (fun (fname, reports) ->
          List.iter
            (fun (r : Coalesce.loop_report) ->
              if r.status = Coalesce.Coalesced then
                let final =
                  match
                    List.find_opt
                      (fun (f : Func.t) -> String.equal f.name fname)
                      compiled.funcs
                  with
                  | Some f -> dispatch_insts f r.header
                  | None -> r.check_insts
                in
                Fmt.pr
                  "%-12s %s/%s: %d check instruction(s) after cleanup \
                   (%d as emitted)@."
                  bench.name fname r.header final r.check_insts)
            reports)
        compiled.reports)
    compiled_of

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5). *)

let abl1 () =
  section "ABL1"
    "coalesce-before-legalize vs legalize-first (decision 1): Alpha O4 \
     cycles";
  let cells =
    List.concat_map
      (fun (b : W.t) -> [ (b, false); (b, true) ])
      W.all
  in
  let cycles =
    Pool.map ~jobs
      (fun ((bench : W.t), legalize_first) ->
        (W.run ~size:64 ~legalize_first ~machine:Machine.alpha
           ~level:Pipeline.O4 bench)
          .metrics.cycles)
      cells
  in
  let res = Array.of_list cycles in
  List.iteri
    (fun i (bench : W.t) ->
      Fmt.pr "%-12s coalesce-first=%-9d legalize-first=%-9d@." bench.name
        res.(2 * i)
        res.((2 * i) + 1))
    W.all

let abl2 () =
  section "ABL2"
    "profitability by list scheduling vs naive cost sum (decision 2)";
  let benches =
    [ Option.get (W.find "image_add"); Option.get (W.find "image_add16") ]
  in
  let status (machine, (bench : W.t), mode) =
    let coalesce = { Coalesce.default with profit_mode = mode } in
    let cfg = Pipeline.config ~level:Pipeline.O4 ~coalesce machine in
    let compiled = Pipeline.compile_source cfg bench.source in
    let statuses =
      List.concat_map
        (fun (_, rs) ->
          List.map (fun (r : Coalesce.loop_report) -> r.status) rs)
        compiled.reports
    in
    if List.exists (( = ) Coalesce.Coalesced) statuses then "coalesced"
    else "rejected "
  in
  let cells =
    List.concat_map
      (fun machine ->
        List.concat_map
          (fun bench ->
            [
              (machine, bench, Mac_core.Profitability.Schedule);
              (machine, bench, Mac_core.Profitability.CostSum);
            ])
          benches)
      Machine.all
  in
  let res = Array.of_list (Pool.map ~jobs status cells) in
  List.iteri
    (fun mi machine ->
      List.iteri
        (fun bi (bench : W.t) ->
          let at k = res.((((mi * 2) + bi) * 2) + k) in
          Fmt.pr "%-8s %-12s schedule:%s  cost-sum:%s@."
            machine.Machine.name bench.name (at 0) (at 1))
        benches)
    Machine.all

let abl3 () =
  section "ABL3" "run-time checks vs static-only analysis (decision 3)";
  let count_coalesced runtime_checks =
    List.fold_left
      (fun acc (bench : W.t) ->
        let coalesce = { Coalesce.default with runtime_checks } in
        let cfg =
          Pipeline.config ~level:Pipeline.O4 ~coalesce Machine.alpha
        in
        let compiled = Pipeline.compile_source cfg bench.source in
        acc
        + List.length
            (List.concat_map
               (fun (_, rs) ->
                 List.filter
                   (fun (r : Coalesce.loop_report) ->
                     r.status = Coalesce.Coalesced)
                   rs)
               compiled.reports))
      0 (W.dotproduct :: W.all)
  in
  let counts = Pool.map ~jobs count_coalesced [ true; false ] in
  let with_checks, static_only =
    match counts with [ a; b ] -> (a, b) | _ -> assert false
  in
  Fmt.pr
    "loops coalesced across the suite (Alpha): with run-time checks=%d, \
     static-only=%d@."
    with_checks static_only;
  Fmt.pr
    "(the paper: static-only analysis \"would eliminate most \
     opportunities\")@."

let abl4 () =
  section "ABL4" "I-cache unrolling guard (decision 4): MC68030";
  let bench = Option.get (W.find "convolution") in
  let cycles =
    Pool.map ~jobs
      (fun icache_guard ->
        let coalesce =
          { Coalesce.default with icache_guard; respect_profitability = false }
        in
        (W.run ~size:64 ~coalesce ~machine:Machine.mc68030
           ~level:Pipeline.O4 bench)
          .metrics.cycles)
      [ true; false ]
  in
  let on, off = match cycles with [ a; b ] -> (a, b) | _ -> assert false in
  Fmt.pr "convolution, forced coalescing: guard-on=%d guard-off=%d@." on off

let abl5 () =
  section "ABL5"
    "induction-variable elimination (paper Fig. 2 line 16) on/off";
  Fmt.pr
    "Alpha cycles; at O1 the pointer rewrite saves the per-iteration index      arithmetic, at O4 coalescing + DCE would have deleted that arithmetic      anyway and the replicated pointer updates cost a little:@.";
  let cells =
    List.concat_map
      (fun (b : W.t) ->
        List.map
          (fun (level, sr) -> (b, level, sr))
          [
            (Pipeline.O1, false); (Pipeline.O1, true);
            (Pipeline.O4, false); (Pipeline.O4, true);
          ])
      W.all
  in
  let res =
    Array.of_list
      (Pool.map ~jobs
         (fun ((bench : W.t), level, strength_reduce) ->
           (W.run ~size:64 ~strength_reduce ~machine:Machine.alpha ~level
              bench)
             .metrics.cycles)
         cells)
  in
  List.iteri
    (fun i (bench : W.t) ->
      let at k = res.((i * 4) + k) in
      Fmt.pr "%-12s O1: off=%-9d on=%-9d   O4: off=%-9d on=%-9d@."
        bench.name (at 0) (at 1) (at 2) (at 3))
    W.all

let abl6 () =
  section "ABL6" "register pressure: linear-scan allocation";
  Fmt.pr
    "image_add16 on Alpha at O4, cycles by machine register count      (virtual = no allocation; 32 = the Alpha's real file; smaller files      force spilling):@.";
  let bench = Option.get (W.find "image_add16") in
  let configs = [ None; Some 32; Some 16; Some 10; Some 8 ] in
  let outcomes =
    Pool.map ~jobs
      (fun ra ->
        W.run ~size:64 ?regalloc:ra ~machine:Machine.alpha
          ~level:Pipeline.O4 bench)
      configs
  in
  List.iter2
    (fun ra (o : W.outcome) ->
      Fmt.pr "%-10s %8d cycles%s@."
        (match ra with None -> "virtual" | Some k -> string_of_int k)
        o.metrics.cycles
        (if o.correct then "" else "  WRONG OUTPUT"))
    configs outcomes

let abl7 () =
  section "ABL7"
    "Fig. 5 remainder handling: epilogue vs divisibility bail-out";
  Fmt.pr
    "image_add on Alpha at O4 with a trip count that is NOT a multiple of      the widening factor (65x65 = 4225 = 8*528 + 1): the bail-out forfeits      the coalesced loop entirely, the remainder epilogue keeps it:@.";
  let cases = [ ("bail-out", false); ("epilogue", true) ] in
  let outcomes =
    Pool.map ~jobs
      (fun (_, remainder_loop) ->
        let coalesce = { Coalesce.default with remainder_loop } in
        W.run ~size:65 ~coalesce ~machine:Machine.alpha ~level:Pipeline.O4
          (Option.get (W.find "image_add")))
      cases
  in
  List.iter2
    (fun (label, _) (o : W.outcome) ->
      Fmt.pr "%-10s %8d cycles  coalesced-loop=%-6d safe-loop=%-6d %s@."
        label o.metrics.cycles (count_labels o "Lmain")
        (count_labels o "Lsafe")
        (if o.correct then "output correct" else "WRONG OUTPUT"))
    cases outcomes

let abl8 () =
  section "ABL8"
    "unrolling vs instruction-cache pressure (the paper's motivation for      the unroll guard), I-fetch modelled";
  let run machine icache_guard =
    let coalesce = { Coalesce.default with icache_guard } in
    W.run ~size:64 ~coalesce ~model_icache:true ~machine ~level:Pipeline.O2
      (Option.get (W.find "convolution"))
  in
  let outcomes =
    Pool.map ~jobs
      (fun (machine, guard) -> run machine guard)
      [
        (Machine.mc68030, true); (Machine.mc68030, false);
        (Machine.alpha, true); (Machine.alpha, false);
      ]
  in
  let res = Array.of_list outcomes in
  Fmt.pr
    "convolution on the MC68030 (256-byte I-cache) at O2 — no coalescing,      just unrolling — with instruction fetch simulated:@.";
  List.iteri
    (fun i label ->
      let o : W.outcome = res.(i) in
      Fmt.pr "%-22s %9d cycles, %8d I-fetch miss(es) %s@." label
        o.metrics.cycles o.metrics.icache_misses
        (if o.correct then "" else "WRONG OUTPUT"))
    [ "guard on (stays rolled)"; "guard off (unrolled x4)" ];
  Fmt.pr
    "and the same comparison on the Alpha (8 KB I-cache), where the      unrolled loop still fits:@.";
  List.iteri
    (fun i label ->
      let o : W.outcome = res.(i + 2) in
      Fmt.pr "%-22s %9d cycles, %8d I-fetch miss(es) %s@." label
        o.metrics.cycles o.metrics.icache_misses
        (if o.correct then "" else "WRONG OUTPUT"))
    [ "guard on"; "guard off" ]

let full_pipeline () =
  section "FULL"
    "Table II with the complete vpo-style pipeline (strength reduction +      list scheduling + 32-register allocation)";
  let outs = Sweep.full_outcomes ~jobs ~size:64 () in
  let get (bench : W.t) level =
    let _, _, o =
      List.find
        (fun ((b : W.t), l, _) -> String.equal b.name bench.name && l = level)
        outs
    in
    (o.W.metrics.cycles, o.W.correct)
  in
  Fmt.pr "| %-12s | %10s | %10s | %10s | %6s |@." "program" "O2 unroll"
    "O3 loads" "O4 ld+st" "sv-all";
  List.iter
    (fun (bench : W.t) ->
      let o2, k2 = get bench Pipeline.O2 in
      let o3, k3 = get bench Pipeline.O3 in
      let o4, k4 = get bench Pipeline.O4 in
      Fmt.pr "| %-12s | %10d | %10d | %10d | %6.2f | %s@." bench.name o2 o3
        o4
        (100.0 *. float_of_int (o2 - o4) /. float_of_int o2)
        (if k2 && k3 && k4 then "ok" else "WRONG OUTPUT"))
    W.all;
  outs

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: compiler and simulator throughput. *)

let bechamel_benches () =
  section "BECH" "Bechamel microbenchmarks (wall-clock of this library)";
  let open Bechamel in
  let compile_test name source machine =
    Test.make ~name
      (Staged.stage (fun () ->
           let cfg = Pipeline.config ~level:Pipeline.O4 machine in
           ignore (Pipeline.compile_source cfg source)))
  in
  let simulate_test name bench machine level =
    Test.make ~name
      (Staged.stage (fun () -> ignore (W.run ~size:24 ~machine ~level bench)))
  in
  let image_add_src = (Option.get (W.find "image_add")).W.source in
  let verify_test name source verify =
    Test.make ~name
      (Staged.stage (fun () ->
           let cfg = Pipeline.config ~level:Pipeline.O4 ~verify Machine.alpha in
           ignore (Pipeline.compile_source cfg source)))
  in
  (* engine microbenchmark: the same simulation on both engines — the
     per-instruction win of pre-decoding, isolated from parallelism *)
  let engine_test name engine =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore
             (W.run ~size:24 ~engine ~machine:Machine.alpha
                ~level:Pipeline.O4
                (Option.get (W.find "image_add")))))
  in
  let tests =
    Test.make_grouped ~name:"mac"
      [
        Test.make_grouped ~name:"compile"
          (List.map
             (fun (b : W.t) ->
               compile_test ("tab2/" ^ b.name) b.source Machine.alpha)
             W.all);
        (* what --verify costs on top of an O4 compile *)
        Test.make_grouped ~name:"verify"
          [
            verify_test "image_add/none" image_add_src Pipeline.Vnone;
            verify_test "image_add/ir" image_add_src Pipeline.Vir;
            verify_test "image_add/full" image_add_src Pipeline.Vfull;
          ];
        Test.make_grouped ~name:"engine"
          [
            engine_test "image_add/fast" `Fast;
            engine_test "image_add/reference" `Reference;
            engine_test "image_add/jit" `Jit;
          ];
        Test.make_grouped ~name:"simulate"
          [
            simulate_test "table2_alpha"
              (Option.get (W.find "image_add"))
              Machine.alpha Pipeline.O4;
            simulate_test "table3_mc88100"
              (Option.get (W.find "image_add"))
              Machine.mc88100 Pipeline.O4;
            simulate_test "table4_mc68030"
              (Option.get (W.find "image_add"))
              Machine.mc68030 Pipeline.O4;
            simulate_test "fig1_dotproduct" W.dotproduct Machine.alpha
              Pipeline.O4;
            simulate_test "fig5_runtime_checks"
              (Option.get (W.find "mirror"))
              Machine.alpha Pipeline.O4;
          ];
      ]
  in
  let quota = Time.second (if quick then 0.1 else 0.5) in
  let cfg = Benchmark.cfg ~limit:500 ~quota ~kde:(Some 500) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | _ -> nan
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Fmt.pr "%-40s %12.0f ns/run@." name est)
    (List.sort compare !rows)

let () =
  Fmt.pr "memory-access-coalescing benchmark harness (size=%d%s, %d job(s))@."
    size
    (if quick then ", quick mode" else "")
    jobs;
  let t0 = now () in
  fig1 ();
  let tab_t0 = now () in
  let rows2 = table "TAB2" Machine.alpha "Table II: DEC Alpha" in
  let tab2_seconds = now () -. tab_t0 in
  let rows3 = table "TAB3" Machine.mc88100 "Table III: Motorola 88100" in
  let rows4 =
    table "TAB4" Machine.mc68030 "68030 result (in-text): slower everywhere"
  in
  let sched88 =
    sched_table Machine.mc88100 "Table III + software pipelining"
  in
  let sched68 =
    sched_table Machine.mc68030 "68030 + software pipelining"
  in
  sched_gate ~sched_rows:sched88 ~tab3_rows:rows3;
  let speedup = speedup_tab2 tab2_seconds in
  engines_check ();
  fig5 ();
  preh ();
  abl1 ();
  abl2 ();
  abl3 ();
  abl4 ();
  abl5 ();
  abl6 ();
  abl7 ();
  abl8 ();
  let full_outs = full_pipeline () in
  let cells =
    Sweep.cells_of_rows ~section:"TAB2" ~machine:Machine.alpha rows2
    @ Sweep.cells_of_rows ~section:"TAB3" ~machine:Machine.mc88100 rows3
    @ Sweep.cells_of_rows ~section:"TAB4" ~machine:Machine.mc68030 rows4
    @ Sweep.cells_of_rows ~section:"SCHED" ~machine:Machine.mc88100 sched88
    @ Sweep.cells_of_rows ~section:"SCHED" ~machine:Machine.mc68030 sched68
    @ Sweep.cells_of_full_outcomes full_outs
  in
  let wall = now () -. t0 in
  let json =
    Sweep.to_json ~size ~jobs_requested:jobs
      ~jobs_effective:(Pool.effective_jobs ~jobs 28)
      ~engine:"fast" ~wall_seconds:wall ~speedup cells
  in
  (match Sweep.validate json with
  | Ok n ->
    let oc = open_out json_path in
    output_string oc json;
    close_out oc;
    Fmt.pr "@.wrote %s (%d cells, validated)@." json_path n
  | Error msg -> failwith ("refusing to write invalid JSON: " ^ msg));
  bechamel_benches ();
  Fmt.pr "@.done.@."
